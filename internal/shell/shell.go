// Package shell provides the LiteView user interface: an extension of
// the LiteOS interactive shell. The deployment is mounted as a Unix-like
// file tree (each node is a directory such as /sn01/192.168.0.1); the
// user cd's into a node — "logging into" it — and runs management
// commands there. Output formats follow the paper's sample transcripts.
package shell

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"liteview/internal/core"
	"liteview/internal/diagnose"
	"liteview/internal/fault"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
	"liteview/internal/testbed"
)

// Resolver maps between node names, IDs, and shell paths.
type Resolver interface {
	// IDByName resolves an IP-convention node name.
	IDByName(name string) (phys.NodeID, bool)
	// Names lists all node names, sorted.
	Names() []string
	// PathOf returns the full shell path of a named node.
	PathOf(name string) (string, bool)
}

// Locator is the optional Resolver extension the healthcheck command
// needs: where to walk to reach each node.
type Locator interface {
	PosOf(name string) (phys.Position, bool)
}

// testbedResolver adapts a testbed to the Resolver interface.
type testbedResolver struct{ tb *testbed.Testbed }

func (r testbedResolver) IDByName(name string) (phys.NodeID, bool) {
	n, ok := r.tb.ByName(name)
	if !ok {
		return 0, false
	}
	return n.ID(), true
}

func (r testbedResolver) Names() []string {
	names := make([]string, 0, len(r.tb.Nodes))
	for _, n := range r.tb.Nodes {
		names = append(names, n.Name())
	}
	sort.Strings(names)
	return names
}

func (r testbedResolver) PathOf(name string) (string, bool) {
	n, ok := r.tb.ByName(name)
	if !ok {
		return "", false
	}
	return n.Path(), true
}

func (r testbedResolver) PosOf(name string) (phys.Position, bool) {
	n, ok := r.tb.ByName(name)
	if !ok {
		return phys.Position{}, false
	}
	return n.Position(), true
}

// Shell is one interactive management session.
type Shell struct {
	ws       *core.Workstation
	resolver Resolver
	out      io.Writer
	cwd      string // "/" or a node path
	curName  string // name of the node logged into, "" at the root
	// inj drives the fault command; nil disables it.
	inj *fault.Injector
	// tb enables the simulator-side observability commands (trace,
	// stats medium/reset); nil on sessions built with New.
	tb *testbed.Testbed
	// writeErr latches the first output-write failure of the command in
	// progress. With a network-backed writer a dead peer surfaces here,
	// and Exec reports it instead of silently dropping output.
	writeErr error
}

// ErrWrite reports that a command's output could not be written to the
// session's writer. With a network-backed session this is the "operator
// hung up" signal: the command may have run to completion on the
// deployment, but its output never reached the user.
var ErrWrite = errors.New("shell: session output write failed")

// New creates a session writing output to out.
func New(ws *core.Workstation, resolver Resolver, out io.Writer) (*Shell, error) {
	if ws == nil || resolver == nil || out == nil {
		return nil, errors.New("shell: nil dependency")
	}
	return &Shell{ws: ws, resolver: resolver, out: out, cwd: "/"}, nil
}

// NewForTestbed creates a session over a deployed testbed. The session
// gets the testbed's fault injector, enabling the fault command.
func NewForTestbed(tb *testbed.Testbed, ws *core.Workstation, out io.Writer) (*Shell, error) {
	s, err := New(ws, testbedResolver{tb}, out)
	if err != nil {
		return nil, err
	}
	s.inj = tb.FaultInjector()
	s.tb = tb
	return s, nil
}

// SetFaultInjector enables the fault command on a session built with New.
func (s *Shell) SetFaultInjector(inj *fault.Injector) { s.inj = inj }

// Telemetry returns the recorder of the session's deployment, creating
// it on first use. Sessions built with New (no testbed) return nil —
// callers must treat the result as optional.
func (s *Shell) Telemetry() *telemetry.Recorder {
	if s.tb == nil {
		return nil
	}
	return s.tb.Telemetry()
}

// Cwd returns the current directory.
func (s *Shell) Cwd() string { return s.cwd }

// CurrentNode returns the node the session is logged into and whether
// one is selected.
func (s *Shell) CurrentNode() (phys.NodeID, bool) {
	if s.curName == "" {
		return 0, false
	}
	return s.mustID(s.curName), true
}

func (s *Shell) mustID(name string) phys.NodeID {
	id, _ := s.resolver.IDByName(name)
	return id
}

// SetOutput redirects subsequent command output to w — the programmatic
// session API: a service holding one long-lived shell per tenant points
// the output at a fresh per-command buffer before each Exec.
func (s *Shell) SetOutput(w io.Writer) error {
	if w == nil {
		return errors.New("shell: nil output writer")
	}
	s.out = w
	return nil
}

func (s *Shell) printf(format string, args ...any) {
	if s.writeErr != nil {
		return // the writer is already known dead; don't spam it
	}
	if _, err := fmt.Fprintf(s.out, format, args...); err != nil {
		s.writeErr = err
	}
}

// Exec parses and runs one command line. A failure to write the
// command's output is a session error too: it surfaces as an
// ErrWrite-wrapping error (joined with the command's own error when
// both occurred), never silently dropped output.
func (s *Shell) Exec(line string) error {
	s.writeErr = nil
	err := s.exec(line)
	if s.writeErr != nil {
		werr := fmt.Errorf("%w: %v", ErrWrite, s.writeErr)
		if err == nil {
			return werr
		}
		return errors.Join(err, werr)
	}
	return err
}

// exec dispatches one parsed command line.
func (s *Shell) exec(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "pwd":
		s.printf("%s\n", s.cwd)
		return nil
	case "ls":
		return s.ls(args)
	case "cd":
		return s.cd(args)
	case "help":
		s.help()
		return nil
	case "ping":
		return s.ping(args)
	case "traceroute":
		return s.traceroute(args)
	case "neighborsetup":
		return s.neighborSetup(args)
	case "power":
		return s.power(args)
	case "channel":
		return s.channel(args)
	case "log":
		return s.logCmd(args)
	case "survey":
		return s.survey()
	case "healthcheck":
		return s.healthcheck()
	case "health":
		return s.health()
	case "stats":
		return s.stats(args)
	case "energy":
		return s.energy()
	case "fault":
		return s.fault(args)
	case "trace":
		return s.trace(args)
	default:
		return fmt.Errorf("shell: unknown command %q (try help)", cmd)
	}
}

func (s *Shell) help() {
	s.printf(`LiteView commands:
  pwd                         print the current directory
  ls [dir]                    list nodes (at /) or the node's file tree
  cd <node-path|name|/ >      log into a node / back to the root
  power [level]               view or set the radio power level (3..31)
  channel [ch]                view or set the radio channel (11..26)
  neighborsetup list          show the kernel neighbor table
  neighborsetup blacklist add|remove <name|id>
  neighborsetup update period=<ms>
  stats [medium|reset]        link/stack counters and routing state;
                              medium-wide counters; reset zeroes them
  trace on|off|dump [count]   control the cross-layer telemetry recorder
  trace summary               per-layer event counts of the recording
  trace spans                 per-command span summary of the recording
  energy                      battery account and lifetime estimate
  log on|off|show [count]     control / read the node's event log
  survey                      broadcast radio query to all nodes in range
  healthcheck                 walk every node and diagnose the deployment
  health                      self-healing view: suspect links and command
                              circuit-breaker states
  ping <name|id> [round=N] [length=B] [port=P]
  traceroute <name|id> [round=N] [length=B] [port=P]
  fault list                  show the scripted fault schedule
  fault crash <node> [at=ms] [for=ms]
  fault blackout <node> <node> [at=ms] [for=ms]
  fault degrade <node> <node> [at=ms] [for=ms] [db=N]
  fault corrupt <node> [at=ms] [for=ms] [prob=percent]
  fault jam [channel] [at=ms] [for=ms]
  fault partition <node>... [at=ms] [for=ms]
`)
}

func (s *Shell) ls(args []string) error {
	if s.curName == "" {
		for _, name := range s.resolver.Names() {
			path, _ := s.resolver.PathOf(name)
			s.printf("%s\n", path)
		}
		return nil
	}
	// Logged into a node: LiteOS presents the node as a directory tree
	// (/apps, /proc, /dev), fetched over the management channel.
	node, _ := s.CurrentNode()
	sub := ""
	if len(args) > 0 {
		sub = args[0]
	}
	entries, err := s.ws.FsList(node, sub)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Dir {
			s.printf("%s/\n", e.Name)
			continue
		}
		s.printf("%-24s %6d B\n", e.Name, e.Size)
	}
	return nil
}

func (s *Shell) cd(args []string) error {
	if len(args) != 1 {
		return errors.New("shell: usage: cd <node-path|name|/>")
	}
	target := args[0]
	if target == "/" || target == ".." {
		s.cwd = "/"
		s.curName = ""
		return nil
	}
	// Accept either the full path (/sn01/192.168.0.1) or the bare name.
	name := target
	if strings.HasPrefix(target, "/") {
		parts := strings.Split(strings.Trim(target, "/"), "/")
		name = parts[len(parts)-1]
	}
	path, ok := s.resolver.PathOf(name)
	if !ok {
		return fmt.Errorf("shell: no such node %q", target)
	}
	s.cwd = path
	s.curName = name
	return nil
}

// node returns the node this session is logged into.
func (s *Shell) node() (phys.NodeID, error) {
	if s.curName == "" {
		return 0, errors.New("shell: not logged into a node (cd into one first)")
	}
	return s.mustID(s.curName), nil
}

// resolveTarget accepts a node name or a numeric ID.
func (s *Shell) resolveTarget(arg string) (phys.NodeID, error) {
	if id, ok := s.resolver.IDByName(arg); ok {
		return id, nil
	}
	if v, err := strconv.Atoi(arg); err == nil && v > 0 && v < 0xFFFF {
		return phys.NodeID(v), nil
	}
	return 0, fmt.Errorf("shell: unknown node %q", arg)
}

// parseOpts parses the paper's key=value option style.
func parseOpts(args []string) (map[string]int, []string, error) {
	opts := make(map[string]int)
	var rest []string
	for _, a := range args {
		if k, v, ok := strings.Cut(a, "="); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, nil, fmt.Errorf("shell: bad option %q", a)
			}
			opts[k] = n
			continue
		}
		rest = append(rest, a)
	}
	return opts, rest, nil
}

func msStr(us uint32) string {
	return fmt.Sprintf("%.1f", float64(us)/1000)
}

func (s *Shell) ping(args []string) error {
	node, err := s.node()
	if err != nil {
		return err
	}
	opts, rest, err := parseOpts(args)
	if err != nil {
		return err
	}
	if len(rest) != 1 {
		return errors.New("shell: usage: ping <name|id> [round=N] [length=B] [port=P]")
	}
	dst, err := s.resolveTarget(rest[0])
	if err != nil {
		return err
	}
	po := core.PingOptions{
		Dst:        dst,
		Rounds:     opts["round"],
		Length:     opts["length"],
		RouterPort: byte(opts["port"]),
	}
	if po.Rounds == 0 {
		po.Rounds = 1
	}
	if po.Length == 0 {
		po.Length = 32
	}
	out, err := s.ws.Ping(node, po)
	if err != nil {
		return err
	}
	s.printf("Pinging %s with %d packets with %d bytes:\n", rest[0], po.Rounds, po.Length)
	if po.RouterPort != 0 && out.Protocol != "" {
		s.printf("Name of protocol: %s\n", out.Protocol)
	}
	for _, r := range out.Results {
		if r.Lost {
			s.printf("Request timed out (packet %d)\n", r.Seq+1)
			continue
		}
		s.printf("RTT = %s ms, LQI = %d/%d, RSSI = %d/%d, Queue = %d/%d\n",
			msStr(r.RTT), r.LQIFwd, r.LQIBwd, r.RSSIFwd, r.RSSIBwd, r.QFwd, r.QBwd)
		s.printf("Power = %d, Channel = %d\n", r.Power, r.Channel)
		for _, h := range r.HopQuality {
			dir := "forward"
			if h.Back {
				dir = "backward"
			}
			s.printf("  hop (%s): LQI = %d, RSSI = %d\n", dir, h.LQI, h.RSSI)
		}
	}
	s.printf("\nPing statistics:\nPackets = %d\nReceived = %d\nLost = %d\n",
		out.Sent, out.Received, out.Lost)
	return nil
}

func (s *Shell) traceroute(args []string) error {
	node, err := s.node()
	if err != nil {
		return err
	}
	opts, rest, err := parseOpts(args)
	if err != nil {
		return err
	}
	if len(rest) != 1 {
		return errors.New("shell: usage: traceroute <name|id> [round=N] [length=B] [port=P]")
	}
	dst, err := s.resolveTarget(rest[0])
	if err != nil {
		return err
	}
	length := opts["length"]
	if length == 0 {
		length = 32
	}
	rounds := opts["round"]
	if rounds == 0 {
		rounds = 1
	}
	port := byte(opts["port"])
	if port == 0 {
		port = 10 // the paper's geographic forwarding example
	}
	s.printf("Reaching %s with %d packets with %d bytes:\n", rest[0], rounds, length)
	for round := 0; round < rounds; round++ {
		out, err := s.ws.Traceroute(node, core.TrOptions{Dst: dst, Length: length, RouterPort: port})
		if err != nil {
			return err
		}
		if round == 0 && out.Protocol != "" {
			s.printf("Name of protocol: %s\n", out.Protocol)
		}
		// Print in hop order with explicit "*" lines for hops whose
		// report was lost on its way back: the walk continued past them
		// (a later hop reported), so the user sees partial knowledge
		// with marked gaps instead of a silently shortened path.
		reports := append([]core.TimedHopReport(nil), out.Reports...)
		sort.Slice(reports, func(i, j int) bool { return reports[i].Hop < reports[j].Hop })
		next := 1
		for _, rep := range reports {
			for ; next < rep.Hop; next++ {
				s.printf("Hop %d: *\n", next)
			}
			next = rep.Hop + 1
			if rep.Lost {
				s.printf("Hop %d: no reply\n", rep.Hop)
				continue
			}
			s.printf("Reply from %s\n", s.nameOf(rep.From))
			s.printf("RTT = %s ms, LQI = %d/%d, RSSI = %d/%d, Queue = %d/%d\n",
				msStr(rep.RTT), rep.LQIFwd, rep.LQIBwd, rep.RSSIFwd, rep.RSSIBwd, rep.QFwd, rep.QBwd)
		}
		s.printf("\nTraceroute statistics:\nPackets = %d\nReceived = %d\nLost = %d\n",
			out.Sent, out.Received, out.Lost)
		if out.Verdict != "" {
			s.printf("Verdict: %s\n", out.Verdict)
		}
	}
	return nil
}

// nameOf renders a node ID as its name when known.
func (s *Shell) nameOf(id phys.NodeID) string {
	for _, name := range s.resolver.Names() {
		if got, _ := s.resolver.IDByName(name); got == id {
			return name
		}
	}
	return fmt.Sprintf("node-%d", id)
}

func (s *Shell) neighborSetup(args []string) error {
	node, err := s.node()
	if err != nil {
		return err
	}
	if len(args) == 0 {
		return errors.New("shell: usage: neighborsetup list|blacklist|update ...")
	}
	switch args[0] {
	case "list":
		out, err := s.ws.NeighborList(node, true)
		if err != nil {
			return err
		}
		s.printf("Neighbors of %s (%d entries):\n", s.curName, len(out.Entries))
		for _, e := range out.Entries {
			flag := ""
			if e.Blacklisted {
				flag = " [blacklisted]"
			}
			s.printf("  %-14s id=%d LQI=%d RSSI=%d PRR=%d%%%s\n",
				e.Name, e.ID, e.LQI, e.RSSI, e.PRRPercent, flag)
		}
		return nil
	case "blacklist":
		if len(args) != 3 || (args[1] != "add" && args[1] != "remove") {
			return errors.New("shell: usage: neighborsetup blacklist add|remove <name|id>")
		}
		target, err := s.resolveTarget(args[2])
		if err != nil {
			return err
		}
		if err := s.ws.Blacklist(node, target, args[1] == "add"); err != nil {
			return err
		}
		s.printf("OK\n")
		return nil
	case "update":
		opts, _, err := parseOpts(args[1:])
		if err != nil {
			return err
		}
		periodMs, ok := opts["period"]
		if !ok || periodMs <= 0 {
			return errors.New("shell: usage: neighborsetup update period=<ms>")
		}
		if err := s.ws.UpdateBeaconPeriod(node, sim.Time(periodMs)*time.Millisecond); err != nil {
			return err
		}
		s.printf("OK\n")
		return nil
	default:
		return fmt.Errorf("shell: unknown neighborsetup subcommand %q", args[0])
	}
}

func (s *Shell) logCmd(args []string) error {
	node, err := s.node()
	if err != nil {
		return err
	}
	if len(args) == 0 {
		return errors.New("shell: usage: log on|off|show [count]")
	}
	switch args[0] {
	case "on", "off":
		if err := s.ws.LogControl(node, args[0] == "on"); err != nil {
			return err
		}
		s.printf("OK\n")
		return nil
	case "show":
		count := 0
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v < 0 {
				return fmt.Errorf("shell: bad count %q", args[1])
			}
			count = v
		}
		entries, err := s.ws.LogDump(node, count)
		if err != nil {
			return err
		}
		s.printf("event log of %s (%d entries):\n", s.curName, len(entries))
		for _, e := range entries {
			s.printf("  [%d ms] %s: %s\n", e.AtMs, e.Tag, e.Msg)
		}
		return nil
	default:
		return fmt.Errorf("shell: unknown log subcommand %q", args[0])
	}
}

// healthcheck walks the whole deployment with the workstation and
// prints the diagnose report. It needs a Resolver that also locates
// nodes (the testbed resolver does).
func (s *Shell) healthcheck() error {
	loc, ok := s.resolver.(Locator)
	if !ok {
		return errors.New("shell: this session's resolver cannot locate nodes for walking")
	}
	var targets []diagnose.Target
	for _, name := range s.resolver.Names() {
		id, _ := s.resolver.IDByName(name)
		pos, ok := loc.PosOf(name)
		if !ok {
			continue
		}
		targets = append(targets, diagnose.Target{ID: id, Name: name, Pos: pos})
	}
	// One span covers the whole walk: every ping, traceroute, and
	// neighbor query the diagnosis runs is stamped with it, so a trace
	// can separate healthcheck traffic from user commands.
	rec := s.ws.Telemetry()
	span := rec.BeginSpan(core.WorkstationID, "healthcheck",
		telemetry.Int("targets", len(targets)))
	rep, err := diagnose.HealthCheck(s.ws, targets, diagnose.Options{})
	rec.EndSpan(span, telemetry.Bool("ok", err == nil))
	if err != nil {
		return err
	}
	s.printf("%s", rep)
	// The walk leaves the operator at the last node; return to the
	// current session node if one is selected.
	if s.curName != "" {
		if pos, ok := loc.PosOf(s.curName); ok {
			s.ws.MoveTo(pos)
		}
	}
	return nil
}

// health renders the self-healing layer's state: links the delivery
// estimators have marked suspect (consecutive failed unicasts) and the
// workstation's per-node command circuit breakers. Suspect links come
// from the simulator-side kernel tables, so the command works even when
// parts of the network are unreachable — that is exactly when the user
// needs it.
func (s *Shell) health() error {
	s.printf("suspect links:\n")
	if s.tb == nil {
		s.printf("  (no testbed attached; link view unavailable)\n")
	} else {
		count := 0
		for _, n := range s.tb.Nodes {
			for _, e := range n.SysNeighborTable().Suspects() {
				s.printf("  %s -> %s: delivery=%.0f%% etx=%.1f\n",
					n.Name(), s.nameOf(e.ID), e.Delivery*100, e.ETX())
				count++
			}
		}
		if count == 0 {
			s.printf("  none\n")
		}
	}
	s.printf("command circuit breakers:\n")
	brs := s.ws.Breakers()
	if len(brs) == 0 {
		s.printf("  all closed\n")
		return nil
	}
	for _, b := range brs {
		s.printf("  %s: %s, %d consecutive failure(s)", s.nameOf(b.Node), b.State, b.Fails)
		if b.RetryIn > 0 {
			s.printf(", probe in %v", time.Duration(b.RetryIn))
		}
		s.printf("\n")
	}
	return nil
}

// stats prints the node's counters and routing protocol state, plus the
// simulator-side medium counters on testbed sessions. "stats medium"
// prints only the medium block (no login needed); "stats reset" zeroes
// the medium and every node's MAC counters.
func (s *Shell) stats(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "medium":
			return s.statsMedium()
		case "reset":
			return s.statsReset()
		default:
			return fmt.Errorf("shell: usage: stats [medium|reset]")
		}
	}
	node, err := s.node()
	if err != nil {
		return err
	}
	out, err := s.ws.Stats(node)
	if err != nil {
		return err
	}
	n := out.Node
	s.printf("node %s, up %d ms:\n", s.curName, n.UptimeMs)
	s.printf("  mac: sent=%d received=%d retries=%d noack=%d crcfail=%d queuedrop=%d queue=%d\n",
		n.MACSent, n.MACReceived, n.MACRetries, n.MACNoAck, n.MACCRCFail, n.MACQueueDrop, n.QueueLen)
	s.printf("  stack: delivered=%d nosubscriber=%d\n", n.StackDeliver, n.StackNoSub)
	s.printf("  ram: %d used / %d free\n", n.RAMUsed, n.RAMFree)
	for _, rt := range out.Routers {
		s.printf("  protocol %q (port %d): originated=%d forwarded=%d delivered=%d noroute=%d queuedrop=%d",
			rt.Name, rt.Port, rt.Originated, rt.Forwarded, rt.Delivered, rt.NoRoute, rt.QueueDrops)
		if rt.HasParent {
			s.printf(" parent=%s cost=%.2f", s.nameOf(rt.Parent), float64(rt.CostCentile)/100)
		}
		s.printf("\n")
	}
	if s.tb != nil {
		s.printMediumStats()
	}
	return nil
}

// printMediumStats renders the shared-air counters.
func (s *Shell) printMediumStats() {
	ms := s.tb.Med.Stats()
	s.printf("  medium: transmitted=%d delivered=%d corrupted=%d missed=%d belowsens=%d wrongch=%d injected=%d\n",
		ms.Transmitted, ms.Delivered, ms.Corrupted, ms.MissedNotListening,
		ms.BelowSensitivity, ms.WrongChannel, ms.InjectedDrops)
}

// statsMedium prints the medium counters without needing a node login.
func (s *Shell) statsMedium() error {
	if s.tb == nil {
		return errors.New("shell: this session has no testbed (medium stats unavailable)")
	}
	s.printf("medium counters:\n")
	s.printMediumStats()
	return nil
}

// statsReset zeroes the medium counters and, on every node, the MAC
// counters, the attached routing protocols' counters, and the neighbor
// table's link-estimator counters — one command returns the whole
// observability surface to a clean baseline before an experiment.
func (s *Shell) statsReset() error {
	if s.tb == nil {
		return errors.New("shell: this session has no testbed (stats reset unavailable)")
	}
	s.tb.Med.ResetStats()
	for _, n := range s.tb.Nodes {
		n.MAC().ResetStats()
		n.SysNeighborTable().ResetEstimatorStats()
		for _, r := range s.tb.Routers(n.ID()) {
			r.ResetStats()
		}
	}
	s.printf("medium, MAC, routing, and link-estimator counters reset\n")
	return nil
}

// trace controls the deployment-wide telemetry recorder: `trace on`
// starts capturing cross-layer events, `trace off` stops, `trace dump
// [count]` prints the newest events as JSONL, `trace summary` prints
// per-layer counts.
func (s *Shell) trace(args []string) error {
	if s.tb == nil {
		return errors.New("shell: this session has no testbed (telemetry unavailable)")
	}
	if len(args) == 0 {
		return errors.New("shell: usage: trace on|off|dump [count]|summary|spans")
	}
	rec := s.tb.Telemetry()
	switch args[0] {
	case "on":
		rec.Start()
		s.printf("telemetry recording on\n")
		return nil
	case "off":
		rec.Stop()
		s.printf("telemetry recording off (%d events captured)\n", rec.Len())
		return nil
	case "dump":
		count := 20
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v < 0 {
				return fmt.Errorf("shell: bad count %q", args[1])
			}
			count = v
		}
		events := rec.Events()
		if count > 0 && len(events) > count {
			events = events[len(events)-count:]
		}
		return telemetry.WriteJSONL(s.out, events, telemetry.Filter{})
	case "summary":
		s.printf("%s", telemetry.Summarize(rec.Events(), telemetry.Filter{}))
		return nil
	case "spans":
		s.printf("%s", telemetry.SummarizeSpans(rec.Events()))
		return nil
	default:
		return fmt.Errorf("shell: unknown trace subcommand %q", args[0])
	}
}

// energy prints the node's battery account.
func (s *Shell) energy() error {
	node, err := s.node()
	if err != nil {
		return err
	}
	es, err := s.ws.Energy(node)
	if err != nil {
		return err
	}
	s.printf("battery of %s: %.1f%% remaining\n", s.curName, float64(es.RemainingPermille)/10)
	s.printf("  tx  %9.3f mJ over %d ms\n", float64(es.TXuJ)/1000, es.TXms)
	s.printf("  rx  %9.3f mJ over %d ms (idle listening)\n", float64(es.RXuJ)/1000, es.RXms)
	s.printf("  off %9.3f mJ over %d ms\n", float64(es.OffuJ)/1000, es.Offms)
	if es.HasLifetime {
		s.printf("  projected lifetime at this draw: %d hours\n", es.EstimatedLifetimeHours)
	}
	return nil
}

// survey broadcasts a radio query: every node in range reports its
// power level and channel after a random group backoff.
func (s *Shell) survey() error {
	got, err := s.ws.GroupRadioGet(0)
	if err != nil {
		return err
	}
	s.printf("radio survey: %d node(s) answered\n", len(got))
	ids := make([]int, 0, len(got))
	for id := range got {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		ri := got[phys.NodeID(id)]
		s.printf("  %-14s power=%d channel=%d\n", s.nameOf(phys.NodeID(id)), ri.Power, ri.Channel)
	}
	return nil
}

func (s *Shell) power(args []string) error {
	node, err := s.node()
	if err != nil {
		return err
	}
	switch len(args) {
	case 0:
		ri, err := s.ws.RadioGet(node)
		if err != nil {
			return err
		}
		s.printf("Power = %d\n", ri.Power)
		return nil
	case 1:
		level, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("shell: bad power level %q", args[0])
		}
		if err := s.ws.SetPower(node, level); err != nil {
			return err
		}
		s.printf("OK\n")
		return nil
	default:
		return errors.New("shell: usage: power [level]")
	}
}

// fault scripts deterministic failures on the deployment — the chaos
// counterpart of the management commands. Times are relative
// milliseconds: at=0 (the default) schedules the fault for the next
// simulation step, for=0 makes it permanent.
func (s *Shell) fault(args []string) error {
	if s.inj == nil {
		return errors.New("shell: this session has no fault injector")
	}
	if len(args) == 0 {
		return errors.New("shell: usage: fault list|crash|blackout|degrade|corrupt|jam|partition ...")
	}
	sub := args[0]
	if sub == "list" {
		faults := s.inj.Faults()
		s.printf("fault schedule (%d entries):\n", len(faults))
		for _, st := range faults {
			s.printf("  %s\n", st)
		}
		return nil
	}
	opts, rest, err := parseOpts(args[1:])
	if err != nil {
		return err
	}
	f := fault.Fault{
		At:       s.inj.Now() + sim.Time(opts["at"])*time.Millisecond,
		Duration: sim.Time(opts["for"]) * time.Millisecond,
	}
	resolveAll := func() ([]phys.NodeID, error) {
		targets := make([]phys.NodeID, 0, len(rest))
		for _, a := range rest {
			id, err := s.resolveTarget(a)
			if err != nil {
				return nil, err
			}
			targets = append(targets, id)
		}
		return targets, nil
	}
	switch sub {
	case "crash", "corrupt":
		targets, err := resolveAll()
		if err != nil {
			return err
		}
		if len(targets) != 1 {
			return fmt.Errorf("shell: usage: fault %s <node> [at=ms] [for=ms]", sub)
		}
		f.Node = targets[0]
		if sub == "crash" {
			f.Kind = fault.NodeCrash
		} else {
			f.Kind = fault.CorruptBurst
			f.Prob = float64(opts["prob"]) / 100
		}
	case "blackout", "degrade":
		targets, err := resolveAll()
		if err != nil {
			return err
		}
		if len(targets) != 2 {
			return fmt.Errorf("shell: usage: fault %s <node> <node> [at=ms] [for=ms]", sub)
		}
		f.A, f.B = targets[0], targets[1]
		if sub == "blackout" {
			f.Kind = fault.LinkBlackout
		} else {
			f.Kind = fault.LinkDegrade
			f.ExtraLossDB = float64(opts["db"])
		}
	case "jam":
		f.Kind = fault.Jam
		switch len(rest) {
		case 0:
		case 1:
			ch, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("shell: bad channel %q", rest[0])
			}
			f.Channel = ch
		default:
			return errors.New("shell: usage: fault jam [channel] [at=ms] [for=ms]")
		}
	case "partition":
		targets, err := resolveAll()
		if err != nil {
			return err
		}
		if len(targets) == 0 {
			return errors.New("shell: usage: fault partition <node>... [at=ms] [for=ms]")
		}
		f.Kind = fault.Partition
		f.Group = targets
	default:
		return fmt.Errorf("shell: unknown fault subcommand %q", sub)
	}
	rec := s.ws.Telemetry()
	span := rec.BeginSpan(core.WorkstationID, "fault", telemetry.String("fault", f.Kind.String()))
	id, err := s.inj.Schedule(f)
	rec.EndSpan(span, telemetry.Bool("ok", err == nil))
	if err != nil {
		return err
	}
	s.printf("fault #%d scheduled: %s at %v\n", id, f.Kind, f.At)
	return nil
}

func (s *Shell) channel(args []string) error {
	node, err := s.node()
	if err != nil {
		return err
	}
	switch len(args) {
	case 0:
		ri, err := s.ws.RadioGet(node)
		if err != nil {
			return err
		}
		s.printf("Channel = %d\n", ri.Channel)
		return nil
	case 1:
		ch, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("shell: bad channel %q", args[0])
		}
		if err := s.ws.SetChannel(node, ch); err != nil {
			return err
		}
		// Follow the node onto its new channel so the session survives.
		if err := s.ws.Radio().SetChannel(ch); err != nil {
			return err
		}
		s.printf("OK (session retuned to channel %d)\n", ch)
		return nil
	default:
		return errors.New("shell: usage: channel [ch]")
	}
}
