package shell

import (
	"strings"
	"testing"
	"time"
)

func TestLogShellCommands(t *testing.T) {
	f := deployShell(t, 2, 5, 20)
	f.run(t, "cd 192.168.0.1")
	f.run(t, "log on")
	f.run(t, "ping 192.168.0.2 round=1 length=16")
	got := f.run(t, "log show")
	if !strings.Contains(got, "event log of 192.168.0.1") {
		t.Fatalf("log show header missing: %q", got)
	}
	if !strings.Contains(got, "ping") {
		t.Fatalf("log lacks the ping trail: %q", got)
	}
	bounded := f.run(t, "log show 1")
	if strings.Count(bounded, "\n") > 2 {
		t.Fatalf("bounded show returned too much: %q", bounded)
	}
	f.run(t, "log off")
	if err := f.sh.Exec("log"); err == nil {
		t.Fatal("bare log accepted")
	}
	if err := f.sh.Exec("log paint"); err == nil {
		t.Fatal("bad subcommand accepted")
	}
	if err := f.sh.Exec("log show x"); err == nil {
		t.Fatal("bad count accepted")
	}
}

func TestSurveyShellCommand(t *testing.T) {
	f := deployShell(t, 3, 10, 21)
	got := f.run(t, "survey")
	if !strings.Contains(got, "radio survey:") {
		t.Fatalf("survey output: %q", got)
	}
	for _, name := range []string{"192.168.0.1", "192.168.0.2", "192.168.0.3"} {
		if !strings.Contains(got, name) {
			t.Fatalf("survey missing %s: %q", name, got)
		}
	}
	if !strings.Contains(got, "power=31 channel=17") {
		t.Fatalf("survey lacks settings: %q", got)
	}
}

func TestTracerouteMultipleRounds(t *testing.T) {
	f := deployShell(t, 3, 15, 22)
	f.run(t, "cd 192.168.0.1")
	got := f.run(t, "traceroute 192.168.0.3 round=2 length=32 port=10")
	if strings.Count(got, "Traceroute statistics:") != 2 {
		t.Fatalf("expected two rounds of statistics:\n%s", got)
	}
}

func TestPingByNumericID(t *testing.T) {
	f := deployShell(t, 2, 5, 23)
	f.run(t, "cd 192.168.0.1")
	got := f.run(t, "ping 2 round=1")
	if !strings.Contains(got, "Received = 1") {
		t.Fatalf("numeric target failed:\n%s", got)
	}
}

func TestUpdatePeriodPropagates(t *testing.T) {
	f := deployShell(t, 2, 5, 24)
	f.run(t, "cd 192.168.0.2")
	f.run(t, "neighborsetup update period=1200")
	n, _ := f.tb.ByName("192.168.0.2")
	if n.Neighbors().Period() != 1200*time.Millisecond {
		t.Fatalf("period = %v", n.Neighbors().Period())
	}
	if err := f.sh.Exec("neighborsetup update"); err == nil {
		t.Fatal("update without period accepted")
	}
	if err := f.sh.Exec("neighborsetup update period=0"); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestShellConstructorsValidate(t *testing.T) {
	f := deployShell(t, 2, 5, 25)
	if _, err := New(nil, testbedResolver{f.tb}, f.out); err == nil {
		t.Fatal("nil workstation accepted")
	}
}

func TestHealthcheckShellCommand(t *testing.T) {
	f := deployShell(t, 3, 15, 26)
	got := f.run(t, "healthcheck")
	if !strings.Contains(got, "health check: 3 node(s) visited") {
		t.Fatalf("output:\n%s", got)
	}
	if !strings.Contains(got, "no problems found") {
		t.Fatalf("healthy deployment reported problems:\n%s", got)
	}
}

func TestLsInsideNodeShowsFileTree(t *testing.T) {
	f := deployShell(t, 2, 5, 27)
	f.run(t, "cd 192.168.0.1")
	root := f.run(t, "ls")
	for _, want := range []string{"apps/", "proc/", "dev/"} {
		if !strings.Contains(root, want) {
			t.Fatalf("node root listing missing %q:\n%s", want, root)
		}
	}
	apps := f.run(t, "ls apps")
	if !strings.Contains(apps, "ping") || !strings.Contains(apps, "2148 B") {
		t.Fatalf("apps listing:\n%s", apps)
	}
	if err := f.sh.Exec("ls nowhere"); err == nil {
		t.Fatal("phantom dir accepted")
	}
}
