package stack

import (
	"testing"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
)

type env struct {
	eng *sim.Engine
	med *medium.Medium
}

func newEnv(seed uint64) *env {
	eng := sim.NewEngine(seed)
	model := phys.DefaultModel(seed)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	return &env{eng: eng, med: medium.New(eng, model)}
}

func (e *env) node(t *testing.T, id phys.NodeID, x float64) *Stack {
	t.Helper()
	rad, err := radio.New(17)
	if err != nil {
		t.Fatal(err)
	}
	var st *Stack
	m, err := mac.New(e.eng, e.med, rad, id, phys.Position{X: x}, mac.DefaultConfig(),
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	if err != nil {
		t.Fatal(err)
	}
	st = New(e.eng, m)
	return st
}

func TestPortDispatch(t *testing.T) {
	e := newEnv(1)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	var got *Packet
	var gotFrom phys.NodeID
	if err := b.Subscribe(10, func(p *Packet, from phys.NodeID, _ medium.RxInfo) {
		got = p
		gotFrom = from
	}); err != nil {
		t.Fatal(err)
	}
	p := &Packet{Port: 10, Origin: 1, Dst: 2, TTL: 1, Data: []byte("hi")}
	if err := a.Send(p, 2, mac.TypeData, nil); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Port != 10 || string(got.Data) != "hi" || gotFrom != 1 {
		t.Fatalf("got %+v from %d", got, gotFrom)
	}
	if b.Stats().Delivered != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestNoSubscriberCounted(t *testing.T) {
	e := newEnv(2)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	a.Send(&Packet{Port: 99, Origin: 1, Dst: 2}, 2, mac.TypeData, nil)
	e.eng.Run()
	if b.Stats().NoSubscriber != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestDestinationFiltering(t *testing.T) {
	e := newEnv(3)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	c := e.node(t, 3, 10)
	heardAtC := false
	c.Subscribe(10, func(*Packet, phys.NodeID, medium.RxInfo) { heardAtC = true })
	b.Subscribe(10, func(*Packet, phys.NodeID, medium.RxInfo) {})
	// MAC frame addressed to node 2; node 3 overhears but must filter.
	a.Send(&Packet{Port: 10, Origin: 1, Dst: 2}, 2, mac.TypeData, nil)
	e.eng.Run()
	if heardAtC {
		t.Fatal("node 3 delivered a frame addressed to node 2")
	}
	if c.Stats().FilteredDst != 1 {
		t.Fatalf("c stats = %+v", c.Stats())
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	e := newEnv(4)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	c := e.node(t, 3, 8)
	n := 0
	h := func(*Packet, phys.NodeID, medium.RxInfo) { n++ }
	b.Subscribe(11, h)
	c.Subscribe(11, h)
	a.Send(&Packet{Port: 11, Origin: 1, Dst: phys.Broadcast}, phys.Broadcast, mac.TypeBeacon, nil)
	e.eng.Run()
	if n != 2 {
		t.Fatalf("broadcast reached %d nodes, want 2", n)
	}
}

func TestSubscribeConflicts(t *testing.T) {
	e := newEnv(5)
	a := e.node(t, 1, 0)
	h := func(*Packet, phys.NodeID, medium.RxInfo) {}
	if err := a.Subscribe(10, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := a.Subscribe(10, h); err != nil {
		t.Fatal(err)
	}
	if err := a.Subscribe(10, h); err == nil {
		t.Fatal("duplicate subscription accepted")
	}
	if !a.Subscribed(10) || a.Ports() != 1 {
		t.Fatal("subscription state wrong")
	}
	a.Unsubscribe(10)
	if a.Subscribed(10) {
		t.Fatal("unsubscribe failed")
	}
	a.Unsubscribe(10) // no-op
	if err := a.Subscribe(10, h); err != nil {
		t.Fatal("resubscribe after unsubscribe failed")
	}
}

func TestSniffersSeeAllTraffic(t *testing.T) {
	e := newEnv(6)
	a := e.node(t, 1, 0)
	c := e.node(t, 3, 10)
	e.node(t, 2, 5).Subscribe(10, func(*Packet, phys.NodeID, medium.RxInfo) {})
	var sniffed []phys.NodeID
	c.AddSniffer(func(src phys.NodeID, _ mac.FrameType, _ medium.RxInfo) {
		sniffed = append(sniffed, src)
	})
	c.AddSniffer(nil) // ignored
	a.Send(&Packet{Port: 10, Origin: 1, Dst: 2}, 2, mac.TypeData, nil)
	e.eng.Run()
	if len(sniffed) != 1 || sniffed[0] != 1 {
		t.Fatalf("sniffed = %v", sniffed)
	}
}

func TestSendLocal(t *testing.T) {
	e := newEnv(7)
	a := e.node(t, 1, 0)
	var got *Packet
	a.Subscribe(42, func(p *Packet, from phys.NodeID, _ medium.RxInfo) {
		if from != 1 {
			t.Errorf("local from = %d", from)
		}
		got = p
	})
	if err := a.SendLocal(&Packet{Port: 42, Data: []byte("loop")}); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("local delivery ran synchronously; must be event-scheduled")
	}
	e.eng.Run()
	if got == nil || string(got.Data) != "loop" {
		t.Fatalf("local delivery failed: %+v", got)
	}
	if a.Stats().LocalDelivered != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
	if err := a.SendLocal(&Packet{Port: 43}); err == nil {
		t.Fatal("local send to dead port accepted")
	}
	// No radio traffic for localhost packets.
	if e.med.Stats().Transmitted != 0 {
		t.Fatal("localhost packet hit the radio")
	}
}

func TestSendEncodesErrors(t *testing.T) {
	e := newEnv(8)
	a := e.node(t, 1, 0)
	bad := &Packet{Port: 1, Data: make([]byte, PayloadCeiling+5)}
	if err := a.Send(bad, 2, mac.TypeData, nil); err == nil {
		t.Fatal("oversized packet accepted")
	}
}

func TestPaddingSurvivesForwarding(t *testing.T) {
	// a → b: b reads the packet, appends the hop's link quality, and
	// forwards to c. c must see one pad record.
	e := newEnv(9)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	c := e.node(t, 3, 10)
	var final *Packet
	c.Subscribe(10, func(p *Packet, _ phys.NodeID, _ medium.RxInfo) { final = p })
	b.Subscribe(10, func(p *Packet, _ phys.NodeID, info medium.RxInfo) {
		if err := p.AppendPad(LinkQuality{LQI: uint8(info.LQI), RSSI: int8(info.RSSI)}); err != nil {
			t.Errorf("pad: %v", err)
		}
		if err := b.Send(p, 3, mac.TypeData, nil); err != nil {
			t.Errorf("forward: %v", err)
		}
	})
	probe := &Packet{Port: 10, Origin: 1, Dst: 3, TTL: 4, Flags: FlagPad, Data: make([]byte, 16)}
	a.Send(probe, 2, mac.TypeData, nil)
	e.eng.Run()
	if final == nil {
		t.Fatal("probe did not arrive")
	}
	if len(final.Pad) != 1 {
		t.Fatalf("pad records = %d, want 1", len(final.Pad))
	}
	if final.Pad[0].LQI < 100 {
		t.Fatalf("recorded LQI = %d", final.Pad[0].LQI)
	}
}

func TestControlFlagPropagatesThroughForwarding(t *testing.T) {
	// FlagControl marks management traffic so every hop classifies the
	// frame correctly for overhead accounting (Figure 7).
	e := newEnv(10)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	c := e.node(t, 3, 10)
	c.Subscribe(10, func(*Packet, phys.NodeID, medium.RxInfo) {})
	b.Subscribe(10, func(p *Packet, _ phys.NodeID, _ medium.RxInfo) {
		if p.Flags&FlagControl == 0 {
			t.Error("control flag lost in transit")
		}
		ftype := mac.TypeData
		if p.Flags&FlagControl != 0 {
			ftype = mac.TypeControl
		}
		if err := b.Send(p, 3, ftype, nil); err != nil {
			t.Error(err)
		}
	})
	p := &Packet{Port: 10, Origin: 1, Dst: 3, TTL: 4, Flags: FlagControl, Data: []byte("mgmt")}
	if err := a.Send(p, 2, mac.TypeControl, nil); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	// Both hops' frames count as control at the MAC level.
	if a.MAC().Stats().SentControl == 0 || b.MAC().Stats().SentControl == 0 {
		t.Fatalf("control accounting: a=%d b=%d",
			a.MAC().Stats().SentControl, b.MAC().Stats().SentControl)
	}
}
