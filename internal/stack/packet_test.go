package stack

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"liteview/internal/phys"
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Port:   10,
		Origin: 0x0101,
		Dst:    0x0909,
		TTL:    16,
		Flags:  FlagPad,
		Data:   []byte("probe-data"),
		Pad:    []LinkQuality{{LQI: 108, RSSI: -1}, {LQI: 95, RSSI: -20}},
	}
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Port != p.Port || got.Origin != p.Origin || got.Dst != p.Dst ||
		got.TTL != p.TTL || got.Flags != p.Flags {
		t.Fatalf("header mismatch: %+v vs %+v", got, p)
	}
	if !bytes.Equal(got.Data, p.Data) {
		t.Fatal("data mismatch")
	}
	if len(got.Pad) != 2 || got.Pad[0] != p.Pad[0] || got.Pad[1] != p.Pad[1] {
		t.Fatalf("pad mismatch: %+v", got.Pad)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	prop := func(port byte, origin, dst uint16, ttl, flags byte, data []byte, padN uint8) bool {
		if len(data) > PayloadCeiling {
			data = data[:PayloadCeiling]
		}
		maxPad := (PayloadCeiling - len(data)) / PadBytesPerHop
		n := int(padN) % (maxPad + 1)
		pad := make([]LinkQuality, n)
		for i := range pad {
			pad[i] = LinkQuality{LQI: byte(50 + i), RSSI: int8(-i)}
		}
		p := &Packet{Port: port, Origin: phys.NodeID(origin), Dst: phys.NodeID(dst),
			TTL: ttl, Flags: flags | FlagPad, Data: data, Pad: pad}
		raw, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := DecodePacket(raw)
		if err != nil {
			return false
		}
		if !bytes.Equal(got.Data, p.Data) || len(got.Pad) != len(p.Pad) {
			return false
		}
		for i := range pad {
			if got.Pad[i] != pad[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOversizedData(t *testing.T) {
	p := &Packet{Data: make([]byte, PayloadCeiling+1)}
	if _, err := p.Encode(); !errors.Is(err, ErrDataTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestPaddingCapacityPaperNumbers(t *testing.T) {
	// "as the probe packet has a payload of 16 bytes, as each hop takes
	// two bytes in padding, a packet could at most travel 24 hops".
	if got := MaxPadHops(16); got != 24 {
		t.Fatalf("MaxPadHops(16) = %d, want 24", got)
	}
	if got := MaxPadHops(64); got != 0 {
		t.Fatalf("MaxPadHops(64) = %d, want 0", got)
	}
	if got := MaxPadHops(0); got != 32 {
		t.Fatalf("MaxPadHops(0) = %d, want 32", got)
	}
	if MaxPadHops(100) != 0 {
		t.Fatal("over-ceiling data should have zero pad hops")
	}
}

func TestAppendPadUntilFull(t *testing.T) {
	p := &Packet{Flags: FlagPad, Data: make([]byte, 16)}
	for i := 0; i < 24; i++ {
		if err := p.AppendPad(LinkQuality{LQI: 100, RSSI: -5}); err != nil {
			t.Fatalf("pad %d rejected: %v", i, err)
		}
	}
	if err := p.AppendPad(LinkQuality{}); !errors.Is(err, ErrPadFull) {
		t.Fatalf("25th pad: err = %v, want ErrPadFull", err)
	}
}

func TestAppendPadRequiresFlag(t *testing.T) {
	p := &Packet{Data: []byte("x")}
	if err := p.AppendPad(LinkQuality{}); err == nil {
		t.Fatal("padding accepted without FlagPad")
	}
}

func TestWireSizeOmitsUnusedCeiling(t *testing.T) {
	// "only the actual data payload is transmitted over the air".
	small := &Packet{Data: make([]byte, 8)}
	big := &Packet{Data: make([]byte, 60)}
	rawS, _ := small.Encode()
	rawB, _ := big.Encode()
	if len(rawS) >= len(rawB) {
		t.Fatal("wire size should track actual data length")
	}
	if len(rawS) != pktHeaderLen+8 {
		t.Fatalf("wire size = %d, want %d", len(rawS), pktHeaderLen+8)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodePacket([]byte{1, 2}); !errors.Is(err, ErrPacketTooSmall) {
		t.Fatalf("short: %v", err)
	}
	// Length field larger than packet.
	raw := make([]byte, pktHeaderLen)
	raw[7] = 50
	if _, err := DecodePacket(raw); !errors.Is(err, ErrBadLength) {
		t.Fatalf("bad length: %v", err)
	}
	// Odd padding remainder.
	raw2 := make([]byte, pktHeaderLen+3)
	raw2[7] = 0
	if _, err := DecodePacket(raw2); !errors.Is(err, ErrBadLength) {
		t.Fatalf("odd pad: %v", err)
	}
}

func TestClone(t *testing.T) {
	p := &Packet{Port: 1, Data: []byte{1, 2}, Flags: FlagPad, Pad: []LinkQuality{{100, -3}}}
	q := p.Clone()
	q.Data[0] = 9
	q.Pad[0].LQI = 60
	if p.Data[0] != 1 || p.Pad[0].LQI != 100 {
		t.Fatal("clone shares storage with original")
	}
}

func TestPadCapacity(t *testing.T) {
	p := &Packet{Flags: FlagPad, Data: make([]byte, 62)}
	if p.PadCapacity() != 1 {
		t.Fatalf("capacity = %d, want 1", p.PadCapacity())
	}
	p.AppendPad(LinkQuality{})
	if p.PadCapacity() != 0 {
		t.Fatalf("capacity after fill = %d", p.PadCapacity())
	}
	full := &Packet{Data: make([]byte, PayloadCeiling)}
	if full.PadCapacity() != 0 {
		t.Fatal("full data payload should leave no pad room")
	}
}
