// Package stack implements the paper's port-based communication stack
// (Figure 2): a port map with subscription-based dispatch, header
// building and analysis, destination filtering, localhost delivery, and
// the link-quality padding mechanism that lets probes accumulate per-hop
// LQI/RSSI without corrupting data payloads.
//
// The stack is the isolation boundary that makes LiteView protocol
// independent: routing protocols and management commands are all just
// port subscribers, and the only data shared between layers is the
// packet itself.
package stack

import (
	"encoding/binary"
	"errors"
	"fmt"

	"liteview/internal/phys"
)

// PayloadCeiling is the routing layer's default payload upper bound (the
// paper's 64 bytes). When padding is enabled, bytes between the end of
// the actual data and this ceiling carry link-quality records.
const PayloadCeiling = 64

// PadBytesPerHop is the size of one link-quality record: one LQI byte
// and one RSSI register byte.
const PadBytesPerHop = 2

// Flag bits in the packet header.
const (
	// FlagPad enables link-quality padding at each forwarding hop.
	FlagPad byte = 1 << 0
	// FlagControl marks management traffic so every forwarding hop can
	// classify the frame for overhead accounting (Figure 7 counts
	// control messages).
	FlagControl byte = 1 << 1
)

// LinkQuality is one per-hop padding record.
type LinkQuality struct {
	// LQI is the CC2420 correlation value (50..110).
	LQI uint8
	// RSSI is the CC2420 RSSI register value.
	RSSI int8
}

// Packet header layout (carried inside the MAC payload):
//
//	offset size field
//	0      1    port
//	1      2    origin short address (big endian)
//	3      2    final destination short address (big endian)
//	5      1    TTL (remaining hops)
//	6      1    flags
//	7      1    data length
//	8      n    data
//	8+n    2k   k link-quality padding records (when FlagPad set)
const pktHeaderLen = 8

// Packet is a routing-layer packet.
type Packet struct {
	// Port selects the subscriber (protocol or command process) that
	// handles the packet.
	Port byte
	// Origin is the node that created the packet.
	Origin phys.NodeID
	// Dst is the final destination (phys.Broadcast floods).
	Dst phys.NodeID
	// TTL is the remaining hop budget.
	TTL byte
	// Flags carries FlagPad and future bits.
	Flags byte
	// Data is the application payload.
	Data []byte
	// Pad holds the accumulated per-hop link-quality records.
	Pad []LinkQuality
}

// Errors from packet encoding/decoding and padding.
var (
	ErrDataTooLong    = fmt.Errorf("stack: data exceeds payload ceiling of %d bytes", PayloadCeiling)
	ErrPacketTooSmall = errors.New("stack: packet shorter than header")
	ErrPadFull        = errors.New("stack: padding region exhausted")
	ErrBadLength      = errors.New("stack: length field inconsistent with packet size")
)

// PadCapacity returns how many more link-quality records fit in the
// padding region given the packet's data length.
func (p *Packet) PadCapacity() int {
	room := PayloadCeiling - len(p.Data) - PadBytesPerHop*len(p.Pad)
	if room < 0 {
		return 0
	}
	return room / PadBytesPerHop
}

// MaxPadHops returns the total number of hops a probe with the given
// data length can record (the paper's 16-byte probe yields 24).
func MaxPadHops(dataLen int) int {
	room := PayloadCeiling - dataLen
	if room < 0 {
		return 0
	}
	return room / PadBytesPerHop
}

// AppendPad adds one link-quality record; it fails with ErrPadFull once
// the padding region is exhausted, which is the scalability limit the
// paper describes for the multi-hop ping command.
func (p *Packet) AppendPad(lq LinkQuality) error {
	if p.Flags&FlagPad == 0 {
		return errors.New("stack: padding not enabled on packet")
	}
	if p.PadCapacity() == 0 {
		return ErrPadFull
	}
	p.Pad = append(p.Pad, lq)
	return nil
}

// Encode serialises the packet. Only bytes actually used are emitted
// ("only the actual data payload is transmitted over the air") — the
// ceiling is a capacity bound, not a wire size.
func (p *Packet) Encode() ([]byte, error) {
	if len(p.Data) > PayloadCeiling {
		return nil, ErrDataTooLong
	}
	if PadBytesPerHop*len(p.Pad) > PayloadCeiling-len(p.Data) {
		return nil, ErrPadFull
	}
	return p.AppendEncode(make([]byte, 0, pktHeaderLen+len(p.Data)+PadBytesPerHop*len(p.Pad)))
}

// AppendEncode serialises the packet into dst's spare capacity and
// returns the extended slice. Encoding into a retained buffer's [:0]
// reslice makes steady-state sends allocation-free.
func (p *Packet) AppendEncode(dst []byte) ([]byte, error) {
	if len(p.Data) > PayloadCeiling {
		return dst, ErrDataTooLong
	}
	if PadBytesPerHop*len(p.Pad) > PayloadCeiling-len(p.Data) {
		return dst, ErrPadFull
	}
	start := len(dst)
	dst = append(dst, make([]byte, pktHeaderLen+len(p.Data)+PadBytesPerHop*len(p.Pad))...)
	buf := dst[start:]
	buf[0] = p.Port
	binary.BigEndian.PutUint16(buf[1:3], uint16(p.Origin))
	binary.BigEndian.PutUint16(buf[3:5], uint16(p.Dst))
	buf[5] = p.TTL
	buf[6] = p.Flags
	buf[7] = byte(len(p.Data))
	copy(buf[pktHeaderLen:], p.Data)
	off := pktHeaderLen + len(p.Data)
	for _, lq := range p.Pad {
		buf[off] = lq.LQI
		buf[off+1] = byte(lq.RSSI)
		off += 2
	}
	return dst, nil
}

// DecodePacket parses a serialised packet. The returned packet owns
// copies of its data and padding.
func DecodePacket(raw []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodePacketInto(p, raw); err != nil {
		return nil, err
	}
	p.Data = append([]byte(nil), p.Data...)
	return p, nil
}

// DecodePacketInto parses a serialised packet into p, reusing p's pad
// storage. p.Data ALIASES raw — the caller owns the lifetime question:
// the stack's dispatch path hands such packets to handlers as borrows
// (see Handler), and anything retained past the callback must be
// Cloned. On error p is left in an unspecified state.
func DecodePacketInto(p *Packet, raw []byte) error {
	if len(raw) < pktHeaderLen {
		return ErrPacketTooSmall
	}
	dataLen := int(raw[7])
	if pktHeaderLen+dataLen > len(raw) {
		return ErrBadLength
	}
	padBytes := len(raw) - pktHeaderLen - dataLen
	if padBytes%PadBytesPerHop != 0 {
		return ErrBadLength
	}
	p.Port = raw[0]
	p.Origin = phys.NodeID(binary.BigEndian.Uint16(raw[1:3]))
	p.Dst = phys.NodeID(binary.BigEndian.Uint16(raw[3:5]))
	p.TTL = raw[5]
	p.Flags = raw[6]
	p.Data = raw[pktHeaderLen : pktHeaderLen+dataLen]
	p.Pad = p.Pad[:0]
	off := pktHeaderLen + dataLen
	for off < len(raw) {
		p.Pad = append(p.Pad, LinkQuality{LQI: raw[off], RSSI: int8(raw[off+1])})
		off += 2
	}
	if dataLen+PadBytesPerHop*len(p.Pad) > PayloadCeiling {
		return ErrBadLength
	}
	return nil
}

// Clone returns a deep copy, used when a packet forks (e.g. localhost
// delivery plus forwarding).
func (p *Packet) Clone() *Packet {
	q := *p
	q.Data = append([]byte(nil), p.Data...)
	q.Pad = append([]LinkQuality(nil), p.Pad...)
	return &q
}
