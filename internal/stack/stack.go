package stack

import (
	"errors"
	"fmt"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// Handler receives packets addressed to a subscribed port. from is the
// one-hop transmitter (the MAC source); info carries that hop's radio
// metadata. The packet is a BORROW: p, its Data (which aliases a pooled
// receive buffer), and its Pad are valid only for the duration of the
// call, and a handler that retains any of them must p.Clone() first.
// Localhost deliveries (SendLocal) pass an owned clone, but the
// contract is uniform so handlers need not distinguish the two paths.
type Handler func(p *Packet, from phys.NodeID, info medium.RxInfo)

// Sniffer observes every intact frame the node hears, regardless of
// destination — this is how the kernel's neighbor table learns about
// the neighborhood (Figure 2 routes received headers past the neighbor
// table).
type Sniffer func(src phys.NodeID, ftype mac.FrameType, info medium.RxInfo)

// Stats counts stack-level dispatch outcomes.
type Stats struct {
	// Delivered counts packets handed to a subscriber.
	Delivered uint64
	// NoSubscriber counts packets for ports nobody listens on.
	NoSubscriber uint64
	// FilteredDst counts frames overheard for other nodes.
	FilteredDst uint64
	// Malformed counts undecodable packets.
	Malformed uint64
	// LocalDelivered counts localhost deliveries.
	LocalDelivered uint64
}

// Stack is the per-node port-based communication layer. It is the only
// component that talks to the MAC; everything above it — routing
// protocols, the LiteView runtime controller, applications — interacts
// exclusively through ports.
type Stack struct {
	eng      *sim.Engine
	mac      *mac.MAC
	ports    map[byte]Handler
	sniffers []Sniffer
	stats    Stats
	// tel, when set, receives port-dispatch telemetry events.
	tel *telemetry.Recorder
	// rx is the dispatch scratch packet (handlers get a borrow of it);
	// txBuf is the reused Send encode buffer (the MAC copies at enqueue).
	rx    Packet
	txBuf []byte
}

// SetTelemetry points the stack at a telemetry recorder (nil detaches).
func (s *Stack) SetTelemetry(rec *telemetry.Recorder) { s.tel = rec }

// New wires a stack on top of m. Construct the MAC with the stack's
// OnFrame as its deliver callback (a two-phase hookup: create the Stack
// with a nil MAC placeholder is not allowed, so callers typically use a
// small closure — see node.Build in package liteos).
func New(eng *sim.Engine, m *mac.MAC) *Stack {
	s := &Stack{eng: eng, mac: m, ports: make(map[byte]Handler)}
	return s
}

// OnFrame is the MAC deliver callback; pass it to mac.New.
func (s *Stack) OnFrame(f mac.Frame, info medium.RxInfo) {
	for _, sn := range s.sniffers {
		sn(f.Src, f.Type, info)
	}
	if f.Dst != s.mac.NodeID() && f.Dst != phys.Broadcast {
		s.stats.FilteredDst++
		return
	}
	p := &s.rx
	err := DecodePacketInto(p, f.Payload)
	if err != nil {
		s.stats.Malformed++
		if s.tel.Recording() {
			s.tel.Emit(s.mac.NodeID(), telemetry.LayerStack, "malformed",
				telemetry.Node("from", f.Src))
		}
		return
	}
	h, ok := s.ports[p.Port]
	if !ok {
		s.stats.NoSubscriber++
		if s.tel.Recording() {
			s.tel.Emit(s.mac.NodeID(), telemetry.LayerStack, "no-subscriber",
				telemetry.Node("from", f.Src),
				telemetry.Int("port", int(p.Port)))
		}
		return
	}
	s.stats.Delivered++
	if s.tel.Recording() {
		s.tel.Emit(s.mac.NodeID(), telemetry.LayerStack, "dispatch",
			telemetry.Node("from", f.Src),
			telemetry.Int("port", int(p.Port)))
	}
	h(p, f.Src, info)
}

// MAC exposes the underlying link layer (for queue occupancy and radio
// access by management commands).
func (s *Stack) MAC() *mac.MAC { return s.mac }

// NodeID returns the node's short address.
func (s *Stack) NodeID() phys.NodeID { return s.mac.NodeID() }

// Stats returns a snapshot of dispatch counters.
func (s *Stack) Stats() Stats { return s.stats }

// Subscribe registers h on port. Subscribing an occupied port is an
// error: the paper's design gives each process a unique port.
func (s *Stack) Subscribe(port byte, h Handler) error {
	if h == nil {
		return errors.New("stack: nil handler")
	}
	if _, taken := s.ports[port]; taken {
		return fmt.Errorf("stack: port %d already subscribed", port)
	}
	s.ports[port] = h
	return nil
}

// Unsubscribe frees a port. Unsubscribing a free port is a no-op,
// matching process exit semantics.
func (s *Stack) Unsubscribe(port byte) { delete(s.ports, port) }

// Subscribed reports whether a port has a listener.
func (s *Stack) Subscribed(port byte) bool {
	_, ok := s.ports[port]
	return ok
}

// Ports returns the number of active subscriptions.
func (s *Stack) Ports() int { return len(s.ports) }

// AddSniffer registers an observer of all intact overheard frames.
func (s *Stack) AddSniffer(sn Sniffer) {
	if sn != nil {
		s.sniffers = append(s.sniffers, sn)
	}
}

// Send transmits p one hop to nextHop (phys.Broadcast for all
// neighbors). ftype classifies the frame for overhead accounting. sent
// may be nil.
func (s *Stack) Send(p *Packet, nextHop phys.NodeID, ftype mac.FrameType, sent mac.SentFunc) error {
	raw, err := p.AppendEncode(s.txBuf[:0])
	if err != nil {
		return err
	}
	s.txBuf = raw // the MAC copies into its queue slot; reuse next send
	return s.mac.Send(mac.Frame{Type: ftype, Dst: nextHop, Payload: raw}, sent)
}

// SendLocal delivers p to the local subscriber on its port without
// touching the radio — the "Localhost packet" path in Figure 2. The
// delivery is scheduled as a zero-delay event so handlers never recurse
// into each other.
func (s *Stack) SendLocal(p *Packet) error {
	h, ok := s.ports[p.Port]
	if !ok {
		s.stats.NoSubscriber++
		return fmt.Errorf("stack: no local subscriber on port %d", p.Port)
	}
	q := p.Clone()
	s.eng.After(0, func() {
		s.stats.LocalDelivered++
		if s.tel.Recording() {
			s.tel.Emit(s.mac.NodeID(), telemetry.LayerStack, "local",
				telemetry.Int("port", int(q.Port)))
		}
		h(q, s.mac.NodeID(), medium.RxInfo{From: s.mac.NodeID(), At: s.eng.Now()})
	})
	return nil
}
