package stack

import (
	"bytes"
	"testing"
)

// FuzzDecodePacket hardens the stack parser: no panics, and accepted
// packets re-encode identically.
func FuzzDecodePacket(f *testing.F) {
	p := &Packet{Port: 10, Origin: 1, Dst: 2, TTL: 3, Flags: FlagPad, Data: []byte("data")}
	p.AppendPad(LinkQuality{LQI: 100, RSSI: -10})
	good, _ := p.Encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, pktHeaderLen))
	f.Add(bytes.Repeat([]byte{0xAB}, 80))
	f.Fuzz(func(t *testing.T, raw []byte) {
		pkt, err := DecodePacket(raw)
		if err != nil {
			return
		}
		re, err := pkt.Encode()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("re-encode mismatch:\n in: % x\nout: % x", raw, re)
		}
	})
}
