package liteos

import (
	"errors"
	"testing"
	"time"

	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/sim"
)

func testNode(t *testing.T, id phys.NodeID, x float64) (*sim.Engine, *Node) {
	t.Helper()
	eng := sim.NewEngine(uint64(id))
	med := medium.New(eng, phys.DefaultModel(1))
	n, err := NewNode(eng, med, Config{
		ID:   id,
		Name: "192.168.0.1",
		Dir:  "/sn01",
		Pos:  phys.Position{X: x},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, n
}

func TestNodeAssembly(t *testing.T) {
	_, n := testNode(t, 1, 0)
	if n.ID() != 1 || n.Name() != "192.168.0.1" {
		t.Fatalf("identity: %d %q", n.ID(), n.Name())
	}
	if n.Path() != "/sn01/192.168.0.1" {
		t.Fatalf("path = %q", n.Path())
	}
	if n.Radio().Channel() != 17 {
		t.Fatalf("default channel = %d, want 17", n.Radio().Channel())
	}
	if n.Stack() == nil || n.MAC() == nil || n.Neighbors() == nil {
		t.Fatal("components missing")
	}
	if n.RAMUsed() != KernelRAM || n.FlashUsed() != KernelFlash {
		t.Fatalf("fresh node accounting: ram=%d flash=%d", n.RAMUsed(), n.FlashUsed())
	}
}

func TestNodeValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	med := medium.New(eng, phys.DefaultModel(1))
	if _, err := NewNode(eng, med, Config{ID: 1}); err == nil {
		t.Fatal("nameless node accepted")
	}
	if _, err := NewNode(eng, med, Config{ID: 1, Name: "x", Channel: 99}); err == nil {
		t.Fatal("bad channel accepted")
	}
}

func TestTwoNodesCommunicate(t *testing.T) {
	eng := sim.NewEngine(7)
	model := phys.DefaultModel(7)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	a, err := NewNode(eng, med, Config{ID: 1, Name: "192.168.0.1", Pos: phys.Position{X: 0}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(eng, med, Config{ID: 2, Name: "192.168.0.2", Pos: phys.Position{X: 5}})
	if err != nil {
		t.Fatal(err)
	}
	a.Neighbors().Start()
	b.Neighbors().Start()
	eng.RunUntil(10 * time.Second)
	if e, ok := a.SysNeighborTable().Get(2); !ok || e.Name != "192.168.0.2" {
		t.Fatalf("node a table: %+v ok=%v", e, ok)
	}
}

func TestParamBufferSyscall(t *testing.T) {
	_, n := testNode(t, 1, 0)
	if n.SysParamBuffer() != "" {
		t.Fatal("fresh buffer not empty")
	}
	n.SysSetParamBuffer("192.168.0.2 round=3 length=32")
	if n.SysParamBuffer() != "192.168.0.2 round=3 length=32" {
		t.Fatal("buffer not stored")
	}
}

func TestInstallBinaryAndFootprint(t *testing.T) {
	_, n := testNode(t, 1, 0)
	before := n.FlashUsed()
	if err := n.InstallBinary(Binary{Name: "ping", Flash: 2148, RAM: 278}); err != nil {
		t.Fatal(err)
	}
	if n.FlashUsed() != before+2148 {
		t.Fatalf("flash accounting: %d", n.FlashUsed())
	}
	// Reinstall replaces, not accumulates.
	if err := n.InstallBinary(Binary{Name: "ping", Flash: 2200, RAM: 278}); err != nil {
		t.Fatal(err)
	}
	if n.FlashUsed() != before+2200 {
		t.Fatalf("reinstall accounting: %d", n.FlashUsed())
	}
	if got := n.Binaries(); len(got) != 1 || got[0] != "ping" {
		t.Fatalf("binaries = %v", got)
	}
	if b, ok := n.BinaryInfo("ping"); !ok || b.RAM != 278 {
		t.Fatalf("info = %+v ok=%v", b, ok)
	}
	if err := n.InstallBinary(Binary{Name: "", Flash: 1}); err == nil {
		t.Fatal("invalid binary accepted")
	}
	if err := n.InstallBinary(Binary{Name: "huge", Flash: FlashBytes}); !errors.Is(err, ErrNoFlash) {
		t.Fatalf("flash overflow: %v", err)
	}
}

func TestProcessLifecycle(t *testing.T) {
	_, n := testNode(t, 1, 0)
	n.InstallBinary(Binary{Name: "ping", Flash: 2148, RAM: 278})
	if _, err := n.StartProcess("nope"); !errors.Is(err, ErrNoSuchBinary) {
		t.Fatalf("err = %v", err)
	}
	ramBefore := n.RAMUsed()
	n.SysSetParamBuffer("192.168.0.2 round=1")
	p, err := n.StartProcess("ping")
	if err != nil {
		t.Fatal(err)
	}
	if p.State != Running || p.Binary != "ping" {
		t.Fatalf("proc = %+v", p)
	}
	if n.RAMUsed() != ramBefore+278 {
		t.Fatalf("RAM accounting: %d", n.RAMUsed())
	}
	if args := p.Args(); len(args) != 2 || args[0] != "192.168.0.2" || args[1] != "round=1" {
		t.Fatalf("args = %v", args)
	}
	if pids := n.Processes(); len(pids) != 1 || pids[0] != p.PID {
		t.Fatalf("pids = %v", pids)
	}
	if err := p.Exit(); err != nil {
		t.Fatal(err)
	}
	if n.RAMUsed() != ramBefore {
		t.Fatal("RAM not refunded on exit")
	}
	if err := p.Exit(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("double exit: %v", err)
	}
	if len(n.Processes()) != 0 {
		t.Fatal("process list not cleaned")
	}
}

func TestZeroOverheadWhenInactive(t *testing.T) {
	// The paper's efficiency goal: commands introduce zero extra
	// overhead when not activated. Installing a binary costs flash but
	// no RAM until started.
	_, n := testNode(t, 1, 0)
	ram := n.RAMUsed()
	n.InstallBinary(Binary{Name: "traceroute", Flash: 2820, RAM: 272})
	if n.RAMUsed() != ram {
		t.Fatal("inactive binary consumed RAM")
	}
}

func TestRAMExhaustion(t *testing.T) {
	_, n := testNode(t, 1, 0)
	n.InstallBinary(Binary{Name: "hog", Flash: 100, RAM: 1200})
	var procs []*Process
	for {
		p, err := n.StartProcess("hog")
		if err != nil {
			if !errors.Is(err, ErrNoRAM) {
				t.Fatalf("err = %v", err)
			}
			break
		}
		procs = append(procs, p)
	}
	if len(procs) == 0 || len(procs) > 3 {
		t.Fatalf("started %d 1.2KB processes in 4KB RAM", len(procs))
	}
	// Exiting frees room for another.
	procs[0].Exit()
	if _, err := n.StartProcess("hog"); err != nil {
		t.Fatalf("restart after exit: %v", err)
	}
}

func TestEmptyParamsYieldNoArgs(t *testing.T) {
	_, n := testNode(t, 1, 0)
	n.InstallBinary(Binary{Name: "p", Flash: 1, RAM: 1})
	n.SysSetParamBuffer("")
	p, _ := n.StartProcess("p")
	if p.Args() != nil {
		t.Fatalf("args = %v, want nil", p.Args())
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog(3)
	l.Append(time.Second, "x", "dropped while disabled")
	if len(l.Entries()) != 0 {
		t.Fatal("disabled log recorded")
	}
	l.Enable()
	if !l.Enabled() {
		t.Fatal("Enable failed")
	}
	for i := 0; i < 5; i++ {
		l.Append(time.Duration(i)*time.Second, "tick", "event")
	}
	es := l.Entries()
	if len(es) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(es))
	}
	if es[0].At != 2*time.Second {
		t.Fatalf("oldest entry = %v, want 2s", es[0].At)
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d", l.Dropped())
	}
	l.Disable()
	l.Append(9*time.Second, "x", "y")
	if len(l.Entries()) != 3 {
		t.Fatal("disabled log recorded")
	}
	l.Clear()
	if len(l.Entries()) != 0 || l.Dropped() != 0 {
		t.Fatal("clear failed")
	}
	if NewEventLog(0).Cap() != 64 {
		t.Fatal("default capacity wrong")
	}
}

func TestSysLogEvent(t *testing.T) {
	eng, n := testNode(t, 1, 0)
	n.Log().Enable()
	eng.MustSchedule(time.Second, func() {
		n.SysLogEvent("ping", "probe to %s", "192.168.0.2")
	})
	eng.Run()
	es := n.Log().Entries()
	if len(es) != 1 || es[0].Tag != "ping" || es[0].At != time.Second {
		t.Fatalf("entries = %v", es)
	}
	if es[0].String() == "" {
		t.Fatal("entry String empty")
	}
}

func TestProcStateString(t *testing.T) {
	if Running.String() != "running" || Exited.String() != "exited" {
		t.Fatal("state strings")
	}
}
