package liteos

import (
	"fmt"

	"liteview/internal/sim"
)

// EventLog is LiteOS's on-demand logging of internal events: a small
// ring buffer a user enables only when debugging, so it costs nothing
// in the common case. The buffer is circular — appends are O(1) and
// memory stays flat at the configured capacity no matter how long the
// node runs.
type EventLog struct {
	enabled bool
	buf     []LogEntry
	// head indexes the oldest entry; n is the number of live entries.
	head    int
	n       int
	dropped uint64
}

// LogEntry is one logged event.
type LogEntry struct {
	// At is the virtual time of the event.
	At sim.Time
	// Tag classifies the event ("ping", "route", ...).
	Tag string
	// Msg is the event text.
	Msg string
}

func (e LogEntry) String() string {
	return fmt.Sprintf("[%v] %s: %s", e.At, e.Tag, e.Msg)
}

// NewEventLog returns a disabled log bounded to capacity entries.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &EventLog{buf: make([]LogEntry, capacity)}
}

// Enable turns logging on.
func (l *EventLog) Enable() { l.enabled = true }

// Disable turns logging off without clearing recorded entries.
func (l *EventLog) Disable() { l.enabled = false }

// Enabled reports whether events are being recorded.
func (l *EventLog) Enabled() bool { return l.enabled }

// Cap returns the ring's capacity in entries.
func (l *EventLog) Cap() int { return len(l.buf) }

// Len returns the number of recorded entries.
func (l *EventLog) Len() int { return l.n }

// Append records an event when enabled, evicting the oldest entry when
// the ring is full.
func (l *EventLog) Append(at sim.Time, tag, msg string) {
	if !l.enabled {
		return
	}
	if l.n == len(l.buf) {
		l.buf[l.head] = LogEntry{At: at, Tag: tag, Msg: msg}
		l.head = (l.head + 1) % len(l.buf)
		l.dropped++
		return
	}
	l.buf[(l.head+l.n)%len(l.buf)] = LogEntry{At: at, Tag: tag, Msg: msg}
	l.n++
}

// Entries returns a copy of the recorded events, oldest first.
func (l *EventLog) Entries() []LogEntry {
	out := make([]LogEntry, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.head+i)%len(l.buf)]
	}
	return out
}

// Dropped reports how many events were evicted from the ring.
func (l *EventLog) Dropped() uint64 {
	return l.dropped
}

// Clear discards recorded entries.
func (l *EventLog) Clear() {
	// Zero the slots so evicted strings are collectable.
	for i := range l.buf {
		l.buf[i] = LogEntry{}
	}
	l.head, l.n, l.dropped = 0, 0, 0
}
