package liteos

import (
	"fmt"

	"liteview/internal/sim"
)

// EventLog is LiteOS's on-demand logging of internal events: a small
// ring buffer a user enables only when debugging, so it costs nothing
// in the common case.
type EventLog struct {
	enabled bool
	cap     int
	entries []LogEntry
	dropped uint64
}

// LogEntry is one logged event.
type LogEntry struct {
	// At is the virtual time of the event.
	At sim.Time
	// Tag classifies the event ("ping", "route", ...).
	Tag string
	// Msg is the event text.
	Msg string
}

func (e LogEntry) String() string {
	return fmt.Sprintf("[%v] %s: %s", e.At, e.Tag, e.Msg)
}

// NewEventLog returns a disabled log bounded to capacity entries.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &EventLog{cap: capacity}
}

// Enable turns logging on.
func (l *EventLog) Enable() { l.enabled = true }

// Disable turns logging off without clearing recorded entries.
func (l *EventLog) Disable() { l.enabled = false }

// Enabled reports whether events are being recorded.
func (l *EventLog) Enabled() bool { return l.enabled }

// Append records an event when enabled, evicting the oldest entry when
// the ring is full.
func (l *EventLog) Append(at sim.Time, tag, msg string) {
	if !l.enabled {
		return
	}
	if len(l.entries) >= l.cap {
		copy(l.entries, l.entries[1:])
		l.entries = l.entries[:len(l.entries)-1]
		l.dropped++
	}
	l.entries = append(l.entries, LogEntry{At: at, Tag: tag, Msg: msg})
}

// Entries returns a copy of the recorded events, oldest first.
func (l *EventLog) Entries() []LogEntry {
	return append([]LogEntry(nil), l.entries...)
}

// Dropped reports how many events were evicted from the ring.
func (l *EventLog) Dropped() uint64 { return l.dropped }

// Clear discards recorded entries.
func (l *EventLog) Clear() {
	l.entries = l.entries[:0]
	l.dropped = 0
}
