package liteos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Binary is a program image installed in the node's flash. LiteView's
// commands are binaries whose footprints the paper reports (ping:
// 2148 B flash / 278 B RAM; traceroute: 2820 B flash / 272 B RAM) and
// whose key efficiency property is introducing zero overhead when not
// activated — which the accounting here makes checkable.
type Binary struct {
	// Name identifies the image, e.g. "ping".
	Name string
	// Flash is the image size in bytes.
	Flash int
	// RAM is the static RAM the image needs while running.
	RAM int
}

// ProcState is a process lifecycle state.
type ProcState int

const (
	// Running means the process occupies RAM and may own a port.
	Running ProcState = iota
	// Exited means the process has terminated and released its RAM.
	Exited
)

func (s ProcState) String() string {
	if s == Running {
		return "running"
	}
	return "exited"
}

// Process is a running instance of a binary. LiteView commands execute
// "as individual processes" coexisting with user applications.
type Process struct {
	// PID is the node-local process identifier.
	PID int
	// Binary is the image the process runs.
	Binary string
	// Params is the parameter string snapshot the process read from the
	// kernel parameter buffer at start.
	Params string
	// State is the lifecycle state.
	State ProcState

	node *Node
	ram  int
}

// Errors from the process subsystem.
var (
	ErrNoSuchBinary = errors.New("liteos: no such binary installed")
	ErrNoRAM        = errors.New("liteos: out of RAM")
	ErrNoFlash      = errors.New("liteos: out of flash")
	ErrNotRunning   = errors.New("liteos: process not running")
)

// InstallBinary writes a program image into flash, charging the flash
// budget. Reinstalling the same name replaces the image (refunding the
// old size first).
func (n *Node) InstallBinary(b Binary) error {
	if b.Name == "" || b.Flash < 0 || b.RAM < 0 {
		return fmt.Errorf("liteos: invalid binary %+v", b)
	}
	charge := b.Flash
	if old, ok := n.binaries[b.Name]; ok {
		charge -= old.Flash
	}
	if n.flashUsed+charge > FlashBytes {
		return fmt.Errorf("%w: need %d, free %d", ErrNoFlash, charge, n.FlashFree())
	}
	n.flashUsed += charge
	img := b
	n.binaries[b.Name] = &img
	return nil
}

// Binaries returns the installed image names, sorted.
func (n *Node) Binaries() []string {
	out := make([]string, 0, len(n.binaries))
	for name := range n.binaries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BinaryInfo returns the installed image metadata.
func (n *Node) BinaryInfo(name string) (Binary, bool) {
	b, ok := n.binaries[name]
	if !ok {
		return Binary{}, false
	}
	return *b, true
}

// StartProcess launches an installed binary as a process. The process
// snapshots the kernel parameter buffer through the parameter-passing
// system call, exactly as the paper describes: the buffer is written by
// the runtime controller before the start, and the new process reads it
// to find its arguments.
func (n *Node) StartProcess(binary string) (*Process, error) {
	b, ok := n.binaries[binary]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBinary, binary)
	}
	if n.ramUsed+b.RAM > RAMBytes {
		return nil, fmt.Errorf("%w: %q needs %d, free %d", ErrNoRAM, binary, b.RAM, n.RAMFree())
	}
	n.ramUsed += b.RAM
	n.nextPID++
	p := &Process{
		PID:    n.nextPID,
		Binary: binary,
		Params: n.SysParamBuffer(),
		State:  Running,
		node:   n,
		ram:    b.RAM,
	}
	n.procs[p.PID] = p
	return p, nil
}

// Exit terminates the process, refunding its RAM. Double exit is an
// error so callers notice lifecycle bugs.
func (p *Process) Exit() error {
	if p.State != Running {
		return ErrNotRunning
	}
	p.State = Exited
	p.node.ramUsed -= p.ram
	delete(p.node.procs, p.PID)
	return nil
}

// Args splits the process parameter string on spaces, the convention
// the paper's parameter buffer uses ("Multiple parameters could be
// separated by space, so that the process can parse them correctly").
func (p *Process) Args() []string {
	if p.Params == "" {
		return nil
	}
	return strings.Fields(p.Params)
}

// Processes returns the PIDs of running processes, sorted.
func (n *Node) Processes() []int {
	out := make([]int, 0, len(n.procs))
	for pid := range n.procs {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// Process returns the running process with the given PID.
func (n *Node) Process(pid int) (*Process, bool) {
	p, ok := n.procs[pid]
	return p, ok
}
