package liteos

import (
	"fmt"
	"testing"
	"time"

	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/sim"
)

// TestEventLogRingOrder drives the ring through several full
// wrap-arounds and checks that Entries is always the last cap appends,
// oldest first.
func TestEventLogRingOrder(t *testing.T) {
	const cap = 5
	l := NewEventLog(cap)
	l.Enable()
	for i := 0; i < 23; i++ {
		l.Append(time.Duration(i)*time.Millisecond, "seq", fmt.Sprintf("e%d", i))
	}
	es := l.Entries()
	if len(es) != cap {
		t.Fatalf("len = %d, want %d", len(es), cap)
	}
	for i, e := range es {
		want := fmt.Sprintf("e%d", 23-cap+i)
		if e.Msg != want {
			t.Fatalf("entry %d = %q, want %q", i, e.Msg, want)
		}
	}
	if l.Dropped() != 23-cap {
		t.Fatalf("dropped = %d, want %d", l.Dropped(), 23-cap)
	}
	if l.Len() != cap || l.Cap() != cap {
		t.Fatalf("Len/Cap = %d/%d", l.Len(), l.Cap())
	}
}

// TestEventLogClearResetsRing checks that Clear rewinds the ring to a
// fresh state and appends restart from the beginning.
func TestEventLogClearResetsRing(t *testing.T) {
	l := NewEventLog(3)
	l.Enable()
	for i := 0; i < 7; i++ {
		l.Append(time.Duration(i), "t", "x")
	}
	l.Clear()
	if l.Len() != 0 || l.Dropped() != 0 {
		t.Fatalf("after clear: len=%d dropped=%d", l.Len(), l.Dropped())
	}
	l.Append(time.Second, "t", "first")
	es := l.Entries()
	if len(es) != 1 || es[0].Msg != "first" {
		t.Fatalf("entries after clear = %v", es)
	}
}

// TestEventLogMemoryFlat is the chaos test for the bounded log: a node
// that logs forever must not grow. The ring's backing array is
// allocated once, so appends after the ring is warm allocate nothing.
func TestEventLogMemoryFlat(t *testing.T) {
	l := NewEventLog(64)
	l.Enable()
	msgs := [4]string{"a", "b", "c", "d"} // pre-built: measure the ring, not fmt
	for i := 0; i < 128; i++ {            // warm the ring past a wrap
		l.Append(time.Duration(i), "warm", msgs[i%4])
	}
	avg := testing.AllocsPerRun(100000, func() {
		l.Append(time.Millisecond, "chaos", msgs[0])
	})
	if avg != 0 {
		t.Fatalf("Append allocates %.2f allocs/op after warm-up, want 0", avg)
	}
	if l.Len() != 64 {
		t.Fatalf("len = %d, want 64", l.Len())
	}
	if got := l.Dropped(); got < 100000 {
		t.Fatalf("dropped = %d, want >= 100000", got)
	}
}

// TestEventLogCapConfig checks the node honours Config.EventLogCap and
// defaults to 64 entries when it is zero.
func TestEventLogCapConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	med := medium.New(eng, phys.DefaultModel(1))
	n, err := NewNode(eng, med, Config{
		ID: 1, Name: "192.168.0.1", Dir: "/sn01", EventLogCap: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Log().Cap() != 7 {
		t.Fatalf("cap = %d, want 7", n.Log().Cap())
	}
	if _, d := testNode(t, 2, 0); d.Log().Cap() != 64 {
		t.Fatalf("default cap = %d, want 64", d.Log().Cap())
	}
}
