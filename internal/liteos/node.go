// Package liteos models the node-side operating system substrate the
// paper builds on: LiteOS 1.0 on MicaZ-class hardware. It assembles the
// per-node component stack (radio, MAC, port-based stack, kernel
// neighbor table with beaconing), models the mote's RAM/flash budget,
// implements the process abstraction LiteView commands run under, the
// new parameter-passing system call the paper adds, and the on-demand
// event log LiteOS provides for understanding system dynamics.
package liteos

import (
	"errors"
	"fmt"

	"liteview/internal/energy"
	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/neighbor"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/telemetry"
)

// MicaZ hardware budget.
const (
	// RAMBytes is the Atmega128's 4 KB of static RAM.
	RAMBytes = 4 * 1024
	// FlashBytes is the 128 KB programmable flash.
	FlashBytes = 128 * 1024
	// KernelRAM is the share of RAM the kernel itself occupies
	// (threads table, neighbor table, stack buffers).
	KernelRAM = 1536
	// KernelFlash is the kernel's flash footprint.
	KernelFlash = 30 * 1024
)

// Config describes one node of a deployment.
type Config struct {
	// ID is the 802.15.4 short address.
	ID phys.NodeID
	// Name is the IP-convention node name, e.g. "192.168.0.1".
	Name string
	// Dir is the LiteOS file-tree mount, e.g. "/sn01".
	Dir string
	// Pos is the physical position in meters.
	Pos phys.Position
	// Channel is the initial 802.15.4 channel (0 means 17, a mid-band
	// default matching the paper's sample output).
	Channel int
	// MAC overrides the CSMA parameters; zero value means defaults.
	MAC mac.Config
	// NeighborCapacity bounds the kernel neighbor table (0 = default).
	NeighborCapacity int
	// EventLogCap bounds the kernel event-log ring (0 = 64 entries).
	EventLogCap int
	// BatteryJ is the usable battery energy in joules (0 = a 2×AA
	// pack).
	BatteryJ float64
}

// Node is one simulated mote: hardware, kernel state, and processes.
type Node struct {
	eng *sim.Engine
	cfg Config

	rad   *radio.Radio
	mac   *mac.MAC
	stack *stack.Stack
	nbr   *neighbor.Service
	log   *EventLog
	meter *energy.Meter

	paramBuf string

	nextPID  int
	procs    map[int]*Process
	binaries map[string]*Binary

	ramUsed   int
	flashUsed int

	// Crash/reboot lifecycle (driven by internal/fault).
	alive       bool
	bootAt      sim.Time
	beaconWasOn bool
	crashHooks  []func()
	rebootHooks []func()

	// tel publishes kernel-side link-state observations (nil = off).
	tel *telemetry.Recorder
}

// NewNode builds a node and attaches it to the medium. The neighbor
// beacon service is created but not started; call Node.Neighbors().
// Start() when the deployment wants discovery running.
func NewNode(eng *sim.Engine, med *medium.Medium, cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("liteos: node needs a name")
	}
	if cfg.Channel == 0 {
		cfg.Channel = 17
	}
	if cfg.MAC.QueueCap == 0 {
		cfg.MAC = mac.DefaultConfig()
	}
	rad, err := radio.New(cfg.Channel)
	if err != nil {
		return nil, fmt.Errorf("liteos: node %s: %w", cfg.Name, err)
	}
	n := &Node{
		eng:      eng,
		cfg:      cfg,
		rad:      rad,
		log:      NewEventLog(cfg.EventLogCap),
		procs:    make(map[int]*Process),
		binaries: make(map[string]*Binary),
		alive:    true,
	}
	var st *stack.Stack
	m, err := mac.New(eng, med, rad, cfg.ID, cfg.Pos, cfg.MAC,
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	if err != nil {
		return nil, fmt.Errorf("liteos: node %s: %w", cfg.Name, err)
	}
	st = stack.New(eng, m)
	n.mac = m
	n.stack = st
	nbr, err := neighbor.NewService(eng, st, neighbor.NewTable(cfg.NeighborCapacity), cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("liteos: node %s: %w", cfg.Name, err)
	}
	n.nbr = nbr
	// Close the link-estimation loop: every unicast outcome the MAC sees
	// feeds the kernel neighbor table's delivery EWMA. When telemetry is
	// attached, the updated estimate is published as a link-state event —
	// the per-link PRR/ETX/suspect signal the live fleet view renders.
	m.SetTxObserver(func(dst phys.NodeID, err error) {
		nbr.Table().ObserveTxResult(dst, err == nil, eng.Now())
		if n.tel.Recording() {
			if e, known := nbr.Table().Get(dst); known {
				n.tel.Emit(cfg.ID, telemetry.LayerNeighbor, "link-state",
					telemetry.Node("to", dst),
					telemetry.Bool("ok", err == nil),
					telemetry.Float("delivery", e.Delivery),
					telemetry.Float("etx", e.ETX()),
					telemetry.Float("prr", e.PRR),
					telemetry.Bool("suspect", e.Suspect))
			}
		}
	})
	n.meter = energy.Attach(eng, rad, cfg.BatteryJ)
	n.ramUsed = KernelRAM
	n.flashUsed = KernelFlash
	return n, nil
}

// Accessors for the assembled components.

// Engine returns the simulation engine the node runs on.
func (n *Node) Engine() *sim.Engine { return n.eng }

// ID returns the node's short address.
func (n *Node) ID() phys.NodeID { return n.cfg.ID }

// Name returns the node's IP-convention name.
func (n *Node) Name() string { return n.cfg.Name }

// Dir returns the node's LiteOS file-tree mount point.
func (n *Node) Dir() string { return n.cfg.Dir }

// Path returns the full shell path of the node, e.g.
// "/sn01/192.168.0.1".
func (n *Node) Path() string { return n.cfg.Dir + "/" + n.cfg.Name }

// Position returns the node's location.
func (n *Node) Position() phys.Position { return n.cfg.Pos }

// Radio returns the node's CC2420 model.
func (n *Node) Radio() *radio.Radio { return n.rad }

// MAC returns the node's link layer.
func (n *Node) MAC() *mac.MAC { return n.mac }

// Stack returns the node's port-based communication stack.
func (n *Node) Stack() *stack.Stack { return n.stack }

// Neighbors returns the kernel neighborhood service.
func (n *Node) Neighbors() *neighbor.Service { return n.nbr }

// SetTelemetry points the node's kernel-side instrumentation (neighbor
// link-state publishing) at a recorder; nil detaches.
func (n *Node) SetTelemetry(rec *telemetry.Recorder) { n.tel = rec }

// Log returns the node's event log.
func (n *Node) Log() *EventLog { return n.log }

// Energy returns the node's battery meter.
func (n *Node) Energy() *energy.Meter { return n.meter }

// System calls. On real LiteOS these cross from a user process into the
// kernel; here they are methods, but LiteView code only touches kernel
// state through them so the layering survives.

// SysSetParamBuffer stores the parameter string the runtime controller
// prepared for the next process start (the paper's new system call for
// passing runtime parameters).
func (n *Node) SysSetParamBuffer(params string) { n.paramBuf = params }

// SysParamBuffer returns the current parameter buffer. An empty buffer
// is the paper's leading "\0" case.
func (n *Node) SysParamBuffer() string { return n.paramBuf }

// SysNeighborTable exposes the kernel neighbor table to processes,
// mirroring the kernel service LiteView reads via system calls (or, in
// the paper, sometimes by direct memory access).
func (n *Node) SysNeighborTable() *neighbor.Table { return n.nbr.Table() }

// SysLogEvent appends to the node's event log when logging is enabled.
func (n *Node) SysLogEvent(tag, format string, args ...any) {
	n.log.Append(n.eng.Now(), tag, fmt.Sprintf(format, args...))
}

// Crash/reboot lifecycle. Real motes power-fail: every byte of RAM —
// processes, parameter buffer, neighbor table, event log, MAC state —
// is gone, and the radio goes dark until the next boot.

// Alive reports whether the node is powered up.
func (n *Node) Alive() bool { return n.alive }

// Uptime returns the virtual time since the node's last boot.
func (n *Node) Uptime() sim.Time { return n.eng.Now() - n.bootAt }

// OnCrash registers fn to run at every crash, after the kernel has torn
// down. The controller uses this to drop in-flight command state.
func (n *Node) OnCrash(fn func()) { n.crashHooks = append(n.crashHooks, fn) }

// OnReboot registers fn to run at every reboot, once the kernel is back
// up. The controller uses this to re-register with the workstation side.
func (n *Node) OnReboot(fn func()) { n.rebootHooks = append(n.rebootHooks, fn) }

// Crash power-fails the node: kills every process, wipes RAM-resident
// kernel state, resets the link layer, and turns the radio off. A crash
// of an already-dead node is a no-op.
func (n *Node) Crash() {
	if !n.alive {
		return
	}
	n.alive = false
	for _, pid := range n.Processes() {
		if p, ok := n.procs[pid]; ok {
			_ = p.Exit()
		}
	}
	n.paramBuf = ""
	n.log.Clear()
	n.beaconWasOn = n.nbr.Running()
	n.nbr.Stop()
	n.nbr.Table().Clear()
	n.mac.Reset()
	n.rad.SetState(radio.Off)
	for _, fn := range n.crashHooks {
		fn()
	}
}

// Reboot cold-boots a crashed node: the radio comes back up listening,
// the beacon service restarts if it was running at crash time (it is
// part of the boot image), and reboot hooks fire. Rebooting a live node
// is a no-op.
func (n *Node) Reboot() {
	if n.alive {
		return
	}
	n.alive = true
	n.bootAt = n.eng.Now()
	n.rad.SetState(radio.RX)
	n.mac.Boot()
	if n.beaconWasOn {
		n.nbr.Start()
	}
	for _, fn := range n.rebootHooks {
		fn()
	}
}

// RAMUsed returns the bytes of static RAM currently accounted.
func (n *Node) RAMUsed() int { return n.ramUsed }

// RAMFree returns the remaining RAM budget.
func (n *Node) RAMFree() int { return RAMBytes - n.ramUsed }

// FlashUsed returns the bytes of program flash currently accounted.
func (n *Node) FlashUsed() int { return n.flashUsed }

// FlashFree returns the remaining flash budget.
func (n *Node) FlashFree() int { return FlashBytes - n.flashUsed }
