package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"liteview/internal/phys"
)

// jsonEvent mirrors the JSONL field layout AppendJSONLine writes.
type jsonEvent struct {
	Seq   uint64            `json:"seq"`
	Us    int64             `json:"us"`
	DurUs int64             `json:"dur_us"`
	Node  uint64            `json:"node"`
	Layer string            `json:"layer"`
	Kind  string            `json:"kind"`
	Span  uint64            `json:"span"`
	Attrs map[string]string `json:"attrs"`
}

// ParseJSONLine decodes one JSONL event line (the format AppendJSONLine
// writes). Attribute emission order is not preserved by JSON decoding,
// so decoded attrs are sorted by key — stable, though not necessarily
// the original order.
func ParseJSONLine(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, fmt.Errorf("telemetry: bad event line: %w", err)
	}
	if je.Layer == "" && je.Kind == "" {
		return Event{}, fmt.Errorf("telemetry: event line lacks layer and kind")
	}
	// Timestamps are microseconds converted to time.Duration
	// (nanoseconds); reject magnitudes the multiplication would wrap,
	// so decode(encode(e)) is a fixed point on every accepted line.
	const maxUs = int64(1<<63-1) / int64(time.Microsecond)
	if je.Us > maxUs || je.Us < -maxUs || je.DurUs > maxUs || je.DurUs < -maxUs {
		return Event{}, fmt.Errorf("telemetry: event timestamp out of range (us=%d dur_us=%d)", je.Us, je.DurUs)
	}
	e := Event{
		Seq:    je.Seq,
		At:     time.Duration(je.Us) * time.Microsecond,
		Dur:    time.Duration(je.DurUs) * time.Microsecond,
		NodeID: phys.NodeID(je.Node),
		Layer:  Layer(je.Layer),
		Kind:   je.Kind,
		Span:   je.Span,
	}
	if len(je.Attrs) > 0 {
		keys := make([]string, 0, len(je.Attrs))
		for k := range je.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.Attrs = make([]Attr, 0, len(keys))
		for _, k := range keys {
			e.Attrs = append(e.Attrs, Attr{Key: k, Val: je.Attrs[k]})
		}
	}
	return e, nil
}

// ReadJSONL decodes a whole JSONL stream, skipping blank lines. The
// virtual timestamps come back as sim.Time offsets, so a decoded trace
// replays against the same clock arithmetic the live stream uses.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		trimmed := false
		for _, c := range raw {
			if c != ' ' && c != '\t' && c != '\r' {
				trimmed = true
				break
			}
		}
		if !trimmed {
			continue
		}
		e, err := ParseJSONLine(raw)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
