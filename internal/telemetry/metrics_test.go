package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tx")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("tx") != c {
		t.Fatal("second lookup made a new counter")
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rtt", []float64{1, 10, 100})
	if h.Count() != 0 || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram not empty")
	}
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 555.5 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-138.875) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	bounds, counts := h.Buckets()
	if len(counts) != len(bounds) || !math.IsInf(bounds[len(bounds)-1], 1) {
		t.Fatalf("bounds %v, %d counts", bounds, len(counts))
	}
	for i, want := range []uint64{1, 1, 1, 1} { // one per bucket incl. overflow
		if counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], want)
		}
	}
	if len(DefaultRTTBucketsMs()) == 0 {
		t.Fatal("no default RTT buckets")
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{10}).Observe(4)
	snap := r.Snapshot()
	if snap["a"] != 1 || snap["g"] != 1.5 {
		t.Fatalf("snapshot: %v", snap)
	}
	for _, k := range []string{"h.count", "h.sum", "h.min", "h.max", "h.mean"} {
		if _, ok := snap[k]; !ok {
			t.Fatalf("snapshot missing %s: %v", k, snap)
		}
	}
	r.Counter("a").Add(2)
	d := r.Diff(snap)
	if d["a"] != 2 { // diff is the delta, not the new value
		t.Fatalf("diff a = %v", d["a"])
	}
	if _, ok := d["g"]; ok {
		t.Fatalf("diff kept unchanged gauge: %v", d)
	}
}

func TestFormatSnapshotSortedAndTrimmed(t *testing.T) {
	s := FormatSnapshot(map[string]float64{"b": 2, "a": 1.25, "c": 3.14159})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "a ") || !strings.HasPrefix(lines[2], "c ") {
		t.Fatalf("format:\n%s", s)
	}
	if !strings.Contains(s, "b 2\n") { // integral values print without a fraction
		t.Fatalf("integer formatting:\n%s", s)
	}
	if !strings.Contains(s, "c 3.142") { // floats get three decimals
		t.Fatalf("float formatting:\n%s", s)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry has a non-empty snapshot")
	}
}
