package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSubscriptionDeliversInOrder(t *testing.T) {
	_, rec := testRecorder()
	sub := rec.Subscribe(Filter{}, 16)
	defer sub.Close()
	rec.Emit(1, LayerMAC, "a")
	rec.Emit(2, LayerMAC, "b")
	rec.Emit(3, LayerMedium, "c")
	got := sub.Poll(0)
	if len(got) != 3 {
		t.Fatalf("Poll = %d events, want 3", len(got))
	}
	for i, kind := range []string{"a", "b", "c"} {
		if got[i].Kind != kind {
			t.Fatalf("event %d kind = %q, want %q", i, got[i].Kind, kind)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", sub.Dropped())
	}
	if more := sub.Poll(0); len(more) != 0 {
		t.Fatalf("second Poll returned %d events, want 0", len(more))
	}
}

func TestSubscriptionFilter(t *testing.T) {
	_, rec := testRecorder()
	sub := rec.Subscribe(Filter{Layer: LayerMAC, Node: 2}, 16)
	defer sub.Close()
	rec.Emit(1, LayerMAC, "skip-node")
	rec.Emit(2, LayerMedium, "skip-layer")
	rec.Emit(2, LayerMAC, "keep")
	got := sub.Poll(0)
	if len(got) != 1 || got[0].Kind != "keep" {
		t.Fatalf("filtered Poll = %+v, want one 'keep'", got)
	}
}

func TestSubscriptionRingDropsOldest(t *testing.T) {
	_, rec := testRecorder()
	sub := rec.Subscribe(Filter{}, 4)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		rec.Emit(1, LayerMAC, strings.Repeat("x", i+1))
	}
	if sub.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", sub.Dropped())
	}
	got := sub.Poll(0)
	if len(got) != 4 {
		t.Fatalf("Poll = %d events, want the 4 newest", len(got))
	}
	// The survivors are the newest four, still in arrival order.
	for i, want := range []uint64{7, 8, 9, 10} {
		if got[i].Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, got[i].Seq, want)
		}
	}
}

func TestSubscriptionPollMax(t *testing.T) {
	_, rec := testRecorder()
	sub := rec.Subscribe(Filter{}, 16)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		rec.Emit(1, LayerMAC, "e")
	}
	if got := sub.Poll(2); len(got) != 2 {
		t.Fatalf("Poll(2) = %d events", len(got))
	}
	if sub.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", sub.Pending())
	}
	if got := sub.Poll(0); len(got) != 3 {
		t.Fatalf("drain = %d events, want 3", len(got))
	}
}

func TestSubscriptionCloseDetaches(t *testing.T) {
	_, rec := testRecorder()
	sub := rec.Subscribe(Filter{}, 4)
	rec.Emit(1, LayerMAC, "before")
	sub.Close()
	sub.Close() // idempotent
	rec.Emit(1, LayerMAC, "after")
	// Events buffered before the close stay pollable; later ones are
	// never delivered.
	got := sub.Poll(0)
	if len(got) != 1 || got[0].Kind != "before" {
		t.Fatalf("post-close Poll = %+v, want just the buffered 'before'", got)
	}
	if rec.hasSubs.Load() != 0 {
		t.Fatalf("hasSubs = %d after close", rec.hasSubs.Load())
	}
}

func TestSubscribeNilRecorder(t *testing.T) {
	var rec *Recorder
	sub := rec.Subscribe(Filter{}, 4)
	if sub != nil {
		t.Fatal("nil recorder should return a nil subscription")
	}
	// The nil subscription is inert, not a crash.
	if got := sub.Poll(0); len(got) != 0 {
		t.Fatalf("nil subscription returned %d events", len(got))
	}
	if sub.Dropped() != 0 || sub.Pending() != 0 {
		t.Fatal("nil subscription reported activity")
	}
	sub.Close()
}

// TestSubscriptionConcurrentConsumer exercises the one cross-goroutine
// contract: Subscribe/Poll/Dropped/Close from a consumer goroutine
// while the owning goroutine emits. Run with -race.
func TestSubscriptionConcurrentConsumer(t *testing.T) {
	_, rec := testRecorder()
	sub := rec.Subscribe(Filter{}, 64)
	var (
		wg  sync.WaitGroup
		got int
	)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			got += len(sub.Poll(0))
			select {
			case <-stop:
				got += len(sub.Poll(0))
				return
			default:
			}
		}
	}()
	const n = 5000
	for i := 0; i < n; i++ {
		rec.Emit(1, LayerMAC, "e")
	}
	close(stop)
	wg.Wait()
	if total := uint64(got) + sub.Dropped(); total != n {
		t.Fatalf("delivered %d + dropped %d != emitted %d", got, sub.Dropped(), n)
	}
	sub.Close()
}

func TestEventCapTrimsOldest(t *testing.T) {
	_, rec := testRecorder()
	rec.SetEventCap(10)
	sub := rec.Subscribe(Filter{}, 64)
	defer sub.Close()
	for i := 0; i < 30; i++ {
		rec.Emit(1, LayerMAC, "e")
	}
	if n := rec.Len(); n > 20 { // amortized: at most 2x the cap
		t.Fatalf("Len = %d with cap 10", n)
	}
	es := rec.Events()
	if es[len(es)-1].Seq != 30 {
		t.Fatalf("newest seq = %d, want 30", es[len(es)-1].Seq)
	}
	// The cap bounds retention only; the subscriber saw everything.
	if got := len(sub.Poll(0)); got != 30 {
		t.Fatalf("subscriber got %d events, want 30", got)
	}
	rec.SetEventCap(5)
	if n := rec.Len(); n != 5 {
		t.Fatalf("Len = %d after tightening cap to 5", n)
	}
}

func TestSpanStampsEnclosedEvents(t *testing.T) {
	eng, rec := testRecorder()
	rec.Emit(1, LayerMAC, "outside-before")
	id := rec.BeginSpan(9, "ping", Node("dst", 3))
	if id == 0 {
		t.Fatal("BeginSpan returned 0 while recording")
	}
	rec.Emit(1, LayerMAC, "inside")
	eng.MustSchedule(time.Second, func() { rec.Emit(2, LayerMedium, "inside-later") })
	eng.Run()
	rec.EndSpan(id, String("verdict", "ok"))
	rec.Emit(1, LayerMAC, "outside-after")

	var spans, stamped int
	for _, e := range rec.Events() {
		switch {
		case e.Layer == LayerSpan:
			spans++
			if e.Kind != "ping" || e.Span != id || e.NodeID != 9 {
				t.Fatalf("bad span record: %+v", e)
			}
			if e.At != 0 || e.Dur != time.Second {
				t.Fatalf("span extent = at %v dur %v, want at 0 dur 1s", e.At, e.Dur)
			}
			if v, _ := e.Attr("verdict"); v != "ok" {
				t.Fatalf("span lost its closing attrs: %+v", e.Attrs)
			}
			if v, _ := e.Attr("dst"); v != "3" {
				t.Fatalf("span lost its opening attrs: %+v", e.Attrs)
			}
		case strings.HasPrefix(e.Kind, "inside"):
			stamped++
			if e.Span != id {
				t.Fatalf("enclosed event not stamped: %+v", e)
			}
		default:
			if e.Span != 0 {
				t.Fatalf("event outside the span stamped with %d: %+v", e.Span, e)
			}
		}
	}
	if spans != 1 || stamped != 2 {
		t.Fatalf("spans = %d stamped = %d", spans, stamped)
	}
}

func TestSpanOutermostWins(t *testing.T) {
	_, rec := testRecorder()
	outer := rec.BeginSpan(1, "healthcheck")
	inner := rec.BeginSpan(1, "ping")
	if inner != 0 {
		t.Fatalf("nested BeginSpan = %d, want 0", inner)
	}
	rec.Emit(1, LayerMAC, "tx")
	rec.EndSpan(inner) // harmless no-op close
	rec.Emit(1, LayerMAC, "tx2")
	rec.EndSpan(outer, String("ok", "true"))

	var spans []Event
	for _, e := range rec.Events() {
		if e.Layer == LayerSpan {
			spans = append(spans, e)
		} else if e.Span != outer {
			t.Fatalf("event inside nested section lost the outer stamp: %+v", e)
		}
	}
	if len(spans) != 1 || spans[0].Kind != "healthcheck" {
		t.Fatalf("spans = %+v, want exactly the outer healthcheck", spans)
	}
}

func TestSpanPairingSurvivesRecordingToggles(t *testing.T) {
	_, rec := testRecorder()
	rec.Stop()
	id := rec.BeginSpan(1, "ping")
	if id != 0 {
		t.Fatalf("BeginSpan while stopped = %d, want 0", id)
	}
	rec.Start()
	// The nested span must still see itself as nested even though the
	// outer Begin happened while stopped — depth counts regardless.
	if inner := rec.BeginSpan(1, "inner"); inner != 0 {
		t.Fatalf("nested BeginSpan = %d, want 0", inner)
	}
	rec.EndSpan(0)
	rec.EndSpan(id)
	if id2 := rec.BeginSpan(1, "after"); id2 == 0 {
		t.Fatal("depth accounting leaked: BeginSpan returned 0 at top level")
	} else {
		rec.EndSpan(id2)
	}
	var nilRec *Recorder
	if nilRec.BeginSpan(1, "x") != 0 {
		t.Fatal("nil recorder BeginSpan != 0")
	}
	nilRec.EndSpan(0)
}
