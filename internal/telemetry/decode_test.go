package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestParseJSONLineRoundTrip(t *testing.T) {
	e := Event{
		Seq: 42, At: 1500 * time.Millisecond, Dur: 3 * time.Millisecond,
		NodeID: 7, Layer: LayerMAC, Kind: "sent", Span: 9,
		Attrs: []Attr{Node("dst", 3), Int("tries", 2)},
	}
	got, err := ParseJSONLine([]byte(JSONLine(&e)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != e.Seq || got.At != e.At || got.Dur != e.Dur ||
		got.NodeID != e.NodeID || got.Layer != e.Layer ||
		got.Kind != e.Kind || got.Span != e.Span {
		t.Fatalf("round trip changed the event: %+v -> %+v", e, got)
	}
	if v, ok := got.Attr("dst"); !ok || v != "3" {
		t.Fatalf("attr dst lost: %+v", got.Attrs)
	}
	if v, ok := got.Attr("tries"); !ok || v != "2" {
		t.Fatalf("attr tries lost: %+v", got.Attrs)
	}
}

// TestJSONLRoundTripStable: decode(encode(events)) re-encodes to the
// identical bytes. Attrs come back key-sorted (the JSON map loses
// order), so the assertion uses events whose attrs are already sorted.
func TestJSONLRoundTripStable(t *testing.T) {
	_, rec := testRecorder()
	rec.Emit(1, LayerMedium, "rx", Float("dbm", -88.25), String("outcome", "delivered"))
	rec.EmitSpan(2, LayerMAC, "tx", 992*time.Microsecond, Int("len", 48), Node("to", 3))
	id := rec.BeginSpan(1, "ping", Node("dst", 2))
	rec.Emit(1, LayerRouting, "forward", Node("next", 2))
	rec.EndSpan(id, String("verdict", "ok"))

	var b strings.Builder
	if err := WriteJSONL(&b, rec.Events(), Filter{}); err != nil {
		t.Fatal(err)
	}
	first := b.String()
	decoded, err := ReadJSONL(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != rec.Len() {
		t.Fatalf("decoded %d events, recorded %d", len(decoded), rec.Len())
	}
	var b2 strings.Builder
	if err := WriteJSONL(&b2, decoded, Filter{}); err != nil {
		t.Fatal(err)
	}
	// Hand-sort each original event's attrs before comparing bytes: the
	// decoder returns attrs key-sorted.
	sorted := rec.Events()
	for i := range sorted {
		attrs := append([]Attr(nil), sorted[i].Attrs...)
		for x := 1; x < len(attrs); x++ {
			for y := x; y > 0 && attrs[y-1].Key > attrs[y].Key; y-- {
				attrs[y-1], attrs[y] = attrs[y], attrs[y-1]
			}
		}
		sorted[i].Attrs = attrs
	}
	var b3 strings.Builder
	if err := WriteJSONL(&b3, sorted, Filter{}); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b3.String() {
		t.Fatalf("re-encode diverged:\n--- decoded ---\n%s--- original (attr-sorted) ---\n%s",
			b2.String(), b3.String())
	}
}

func TestReadJSONLSkipsBlanksAndReportsLine(t *testing.T) {
	in := "{\"seq\":1,\"us\":0,\"node\":1,\"layer\":\"mac\",\"kind\":\"tx\"}\n\n" +
		"{\"seq\":2,\"us\":5,\"node\":2,\"layer\":\"mac\",\"kind\":\"rx\"}\n"
	events, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if _, err := ReadJSONL(strings.NewReader("{\"seq\":1,\"us\":0,\"node\":1,\"layer\":\"mac\",\"kind\":\"tx\"}\nnot json\n")); err == nil {
		t.Fatal("bad line did not error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks the line number: %v", err)
	}
}

func TestSummarizeSpans(t *testing.T) {
	_, rec := testRecorder()
	id := rec.BeginSpan(9, "ping", Node("dst", 3))
	rec.Emit(1, LayerMAC, "sent")
	rec.Emit(1, LayerMAC, "acked")
	rec.Emit(2, LayerMedium, "rx")
	rec.EndSpan(id, String("verdict", "ok"))
	out := SummarizeSpans(rec.Events())
	for _, want := range []string{"1 command span(s)", "ping", "verdict=ok", "events=3", "mac=2", "medium=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if got := SummarizeSpans(nil); !strings.Contains(got, "0 command span(s)") {
		t.Fatalf("empty summary = %q", got)
	}
}
