package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"liteview/internal/sim"
)

func testRecorder() (*sim.Engine, *Recorder) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(eng)
	rec.Start()
	return eng, rec
}

func TestSequenceAndClockStamping(t *testing.T) {
	eng, rec := testRecorder()
	rec.Emit(1, LayerMAC, "first")
	eng.MustSchedule(time.Second, func() {
		rec.EmitSpan(2, LayerMedium, "second", 3*time.Millisecond, Int("x", 7))
	})
	eng.Run()
	rec.Emit(3, LayerRouting, "third")
	es := rec.Events()
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	for i, e := range es {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, e.Seq)
		}
	}
	if es[1].At != time.Second || es[1].Dur != 3*time.Millisecond {
		t.Fatalf("stamp: at=%v dur=%v", es[1].At, es[1].Dur)
	}
	if es[2].At != time.Second { // virtual clock stays put after Run
		t.Fatalf("third at = %v", es[2].At)
	}
	if v, ok := es[1].Attr("x"); !ok || v != "7" {
		t.Fatalf("attr x = %q,%v", v, ok)
	}
	if _, ok := es[1].Attr("missing"); ok {
		t.Fatal("found a missing attr")
	}
}

func TestStoppedAndNilRecordersAreInert(t *testing.T) {
	_, rec := testRecorder()
	rec.Stop()
	rec.Emit(1, LayerMAC, "lost")
	if rec.Len() != 0 || rec.Recording() {
		t.Fatal("stopped recorder recorded")
	}

	var nilRec *Recorder
	if nilRec.Recording() {
		t.Fatal("nil recorder claims to record")
	}
	nilRec.Emit(1, LayerMAC, "x") // must not panic
	if nilRec.Len() != 0 || nilRec.Events() != nil {
		t.Fatal("nil recorder holds events")
	}
	nilRec.Metrics().Counter("x").Inc() // throwaway, must not panic
	nilRec.Clear()
}

func TestClearKeepsSequenceCounting(t *testing.T) {
	_, rec := testRecorder()
	rec.Emit(1, LayerMAC, "a")
	rec.Emit(1, LayerMAC, "b")
	rec.Clear()
	if rec.Len() != 0 {
		t.Fatal("clear kept events")
	}
	rec.Emit(1, LayerMAC, "c")
	if got := rec.Events()[0].Seq; got != 3 {
		t.Fatalf("seq after clear = %d, want 3", got)
	}
}

func filterEvents() []Event {
	return []Event{
		{Seq: 1, NodeID: 1, Layer: LayerMedium, Kind: "rx",
			Attrs: []Attr{String("from", "2"), String("outcome", "delivered")}},
		{Seq: 2, NodeID: 3, Layer: LayerMAC, Kind: "enqueue",
			Attrs: []Attr{String("dst", "4")}},
		{Seq: 3, NodeID: 5, Layer: LayerRouting, Kind: "forward",
			Attrs: []Attr{String("next", "6"), String("port", "10")}},
	}
}

func TestFilterMatching(t *testing.T) {
	es := filterEvents()
	cases := []struct {
		name string
		f    Filter
		want []uint64 // surviving seqs
	}{
		{"empty matches all", Filter{}, []uint64{1, 2, 3}},
		{"node", Filter{Node: 3}, []uint64{2}},
		{"layer", Filter{Layer: LayerMedium}, []uint64{1}},
		{"kind", Filter{Kind: "forward"}, []uint64{3}},
		{"port", Filter{Port: 10}, []uint64{3}},
		{"link forward", Filter{Link: "2-1"}, []uint64{1}},
		{"link reversed", Filter{Link: "1-2"}, []uint64{1}},
		{"link via next attr", Filter{Link: "5-6"}, []uint64{3}},
		{"link misses", Filter{Link: "7-8"}, nil},
		{"conjunction", Filter{Node: 3, Kind: "rx"}, nil},
	}
	for _, c := range cases {
		got := Select(es, c.f)
		var seqs []uint64
		for _, e := range got {
			seqs = append(seqs, e.Seq)
		}
		if len(seqs) != len(c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, seqs, c.want)
		}
		for i := range seqs {
			if seqs[i] != c.want[i] {
				t.Fatalf("%s: got %v, want %v", c.name, seqs, c.want)
			}
		}
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	eng, rec := testRecorder()
	eng.MustSchedule(time.Millisecond, func() {
		rec.EmitSpan(2, LayerMedium, "tx", 500*time.Microsecond, Int("ch", 17), String("note", `q"uote`))
		rec.Emit(3, LayerMAC, "bare")
	})
	eng.Run()
	var b strings.Builder
	if err := WriteJSONL(&b, rec.Events(), Filter{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var first struct {
		Seq   uint64            `json:"seq"`
		US    int64             `json:"us"`
		DurUS int64             `json:"dur_us"`
		Node  int               `json:"node"`
		Layer string            `json:"layer"`
		Kind  string            `json:"kind"`
		Attrs map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v\n%s", err, lines[0])
	}
	if first.Seq != 1 || first.US != 1000 || first.DurUS != 500 ||
		first.Node != 2 || first.Layer != "medium" || first.Kind != "tx" {
		t.Fatalf("decoded: %+v", first)
	}
	if first.Attrs["ch"] != "17" || first.Attrs["note"] != `q"uote` {
		t.Fatalf("attrs: %v", first.Attrs)
	}
	// The bare event must omit dur_us and attrs entirely.
	if strings.Contains(lines[1], "dur_us") || strings.Contains(lines[1], "attrs") {
		t.Fatalf("bare event has optional fields: %s", lines[1])
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	eng, rec := testRecorder()
	eng.MustSchedule(time.Millisecond, func() {
		rec.EmitSpan(1, LayerMedium, "tx", time.Millisecond)
		rec.Emit(2, LayerMAC, "cca-busy")
	})
	eng.Run()
	var b strings.Builder
	if err := WriteChromeTrace(&b, rec.Events(), Filter{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	var meta, spans, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if meta == 0 || spans != 1 || instants != 1 {
		t.Fatalf("meta=%d spans=%d instants=%d", meta, spans, instants)
	}
}

func TestSummarizeCounts(t *testing.T) {
	_, rec := testRecorder()
	rec.Emit(1, LayerMAC, "enqueue")
	rec.Emit(1, LayerMAC, "enqueue")
	rec.Emit(2, LayerMedium, "tx")
	s := Summarize(rec.Events(), Filter{})
	if !strings.Contains(s, "3 events") ||
		!strings.Contains(s, "mac") || !strings.Contains(s, "enqueue") {
		t.Fatalf("summary:\n%s", s)
	}
	if got := Summarize(nil, Filter{}); !strings.Contains(got, "0 events") {
		t.Fatalf("empty summary: %q", got)
	}
}
