package telemetry_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/telemetry"
	"liteview/internal/testbed"
)

// gridRun executes a fixed command script on a 20×20 grid with the
// medium's reachability index either enabled (the default) or disabled
// (the legacy full fan-out), and returns every observable byte: the
// packet trace CSV, the exported JSONL event stream, the metrics
// snapshot, and the medium stats.
func gridRun(t *testing.T, seed uint64, indexed bool) (traceCSV, jsonl, metrics, stats string) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Grid(20, 20, 14, opt)
	if err != nil {
		t.Fatal(err)
	}
	tb.Med.SetReachabilityIndex(indexed)
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	rec := tb.Telemetry()
	rec.Start()
	var buf strings.Builder
	stop := tb.RecordTrace(&buf)
	defer stop()
	tb.WarmUp(4 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2, Y: -2})
	if err != nil {
		t.Fatal(err)
	}
	ws.Ping(1, core.PingOptions{Dst: 22, Rounds: 2, Length: 32, RouterPort: routing.GeographicPort})
	tb.Run(time.Second)
	var jb strings.Builder
	if err := telemetry.WriteJSONL(&jb, rec.Events(), telemetry.Filter{}); err != nil {
		t.Fatal(err)
	}
	return buf.String(), jb.String(), rec.Metrics().String(), fmt.Sprintf("%+v", tb.Med.Stats())
}

// TestScaleDeterminismWithIndex is the index-purity regression at
// scale: on a 400-node grid, the same seed must produce byte-identical
// telemetry (packet trace, event stream, metrics, medium stats) with
// the reachability index on and off. The index may only make the run
// faster, never different.
func TestScaleDeterminismWithIndex(t *testing.T) {
	trOn, jsOn, mOn, sOn := gridRun(t, 9, true)
	trOff, jsOff, mOff, sOff := gridRun(t, 9, false)
	if trOn != trOff {
		t.Fatal("reachability index changed the packet trace")
	}
	if jsOn != jsOff {
		t.Fatal("reachability index changed the telemetry event stream")
	}
	if mOn != mOff {
		t.Fatalf("reachability index changed the metrics snapshot:\n--- indexed ---\n%s--- fan-out ---\n%s", mOn, mOff)
	}
	if sOn != sOff {
		t.Fatalf("reachability index changed the medium stats:\nindexed %s\nfan-out %s", sOn, sOff)
	}
	if len(strings.Split(trOn, "\n")) < 10 {
		t.Fatalf("suspiciously empty trace:\n%s", trOn)
	}
	if !strings.Contains(mOn, "link.") {
		t.Fatal("no per-link metrics recorded at scale")
	}
}
