package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/diagnose"
	"liteview/internal/fault"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/telemetry"
	"liteview/internal/testbed"
)

// scriptedRun executes the same command script under the same fault
// schedule as the fault package's seed-determinism regression, with the
// telemetry recorder optionally wired in and recording. When live is
// true, a Subscription with a deliberately tiny ring is attached before
// the script and drained from a separate goroutine for the whole run —
// the live-observer configuration whose non-perturbation DESIGN §12
// promises. It returns the packet trace CSV, the diagnosis report, and
// the recorder (nil when record is false).
func scriptedRun(t *testing.T, seed uint64, record, live bool) (traceCSV, report string, rec *telemetry.Recorder) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(5, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	if record {
		rec = tb.Telemetry()
		rec.Start()
	}
	if live {
		// Tiny ring + concurrent consumer: drops are likely and harmless;
		// what must not happen is any effect on the simulation.
		sub := rec.Subscribe(telemetry.Filter{}, 8)
		stop := make(chan struct{})
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for {
				sub.Poll(0)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
		defer func() {
			close(stop)
			<-drained
			sub.Close()
		}()
	}
	inj := tb.FaultInjector()
	var buf strings.Builder
	stop := tb.RecordTrace(&buf)
	defer stop()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now() + 100*time.Millisecond,
		Kind: fault.CorruptBurst, Node: 3, Prob: 0.6, Duration: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := inj.Schedule(fault.Fault{At: inj.Now() + 500*time.Millisecond,
		Kind: fault.NodeCrash, Node: 4, Duration: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	ws.Ping(1, core.PingOptions{Dst: 3, Rounds: 2, Length: 32, RouterPort: routing.GeographicPort})
	ws.Traceroute(1, core.TrOptions{Dst: 5, Length: 32, RouterPort: routing.GeographicPort})
	tb.Run(2 * time.Second)
	var targets []diagnose.Target
	for _, n := range tb.Nodes {
		targets = append(targets, diagnose.Target{ID: n.ID(), Name: n.Name(), Pos: n.Position()})
	}
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), rep.String(), rec
}

// TestRecordingDoesNotPerturb is the tentpole's zero-perturbation
// proof: the same seeded run with telemetry recording enabled yields a
// byte-identical packet trace and diagnosis report to a run where the
// recorder was never created. Emission draws no randomness and
// schedules no events, so observation cannot change the experiment.
func TestRecordingDoesNotPerturb(t *testing.T) {
	tracePlain, repPlain, _ := scriptedRun(t, 31, false, false)
	traceRec, repRec, rec := scriptedRun(t, 31, true, false)
	if tracePlain != traceRec {
		t.Fatal("telemetry recording changed the packet trace")
	}
	if repPlain != repRec {
		t.Fatalf("telemetry recording changed the diagnosis report:\n--- plain ---\n%s--- recorded ---\n%s",
			repPlain, repRec)
	}
	if len(strings.Split(tracePlain, "\n")) < 10 {
		t.Fatalf("suspiciously empty trace:\n%s", tracePlain)
	}
	// The run it didn't perturb must still have been observed in depth:
	// events from at least five distinct layers, faults included.
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
	layers := make(map[telemetry.Layer]bool)
	for _, e := range rec.Events() {
		layers[e.Layer] = true
	}
	if len(layers) < 5 {
		t.Fatalf("only %d layers observed: %v", len(layers), layers)
	}
	if !layers[telemetry.LayerFault] {
		t.Fatalf("fault transitions not recorded: %v", layers)
	}
}

// TestLiveSubscriberDoesNotPerturb extends the zero-perturbation proof
// to the streaming path: the same seeded run with a live subscriber
// attached — tiny ring, concurrent consumer, guaranteed contention —
// produces a byte-identical packet trace, diagnosis report, AND
// recorded event stream to the run without one. This is the contract
// that makes `lvctl watch`, /streamz, and `lvtopo -live` safe to point
// at a production tenant. Run under -race it is also the data-race
// proof for the subscription fan-out.
func TestLiveSubscriberDoesNotPerturb(t *testing.T) {
	tracePlain, repPlain, recPlain := scriptedRun(t, 31, true, false)
	traceLive, repLive, recLive := scriptedRun(t, 31, true, true)
	if tracePlain != traceLive {
		t.Fatal("a live subscriber changed the packet trace")
	}
	if repPlain != repLive {
		t.Fatal("a live subscriber changed the diagnosis report")
	}
	exportJSONL := func(rec *telemetry.Recorder) string {
		var b strings.Builder
		if err := telemetry.WriteJSONL(&b, rec.Events(), telemetry.Filter{}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if exportJSONL(recPlain) != exportJSONL(recLive) {
		t.Fatal("a live subscriber changed the recorded event stream")
	}
}

// TestSpansEncloseMACTraffic is the span-model acceptance check: every
// ping and traceroute span in a recorded run carries at least one MAC
// transmission event stamped with its id — the trace can answer "which
// transmissions did this command cause".
func TestSpansEncloseMACTraffic(t *testing.T) {
	_, _, rec := scriptedRun(t, 31, true, false)
	macBySpan := make(map[uint64]int)
	for _, e := range rec.Events() {
		if e.Layer == telemetry.LayerMAC && e.Span != 0 {
			macBySpan[e.Span]++
		}
	}
	var checked int
	for _, info := range telemetry.Spans(rec.Events()) {
		kind := info.Record.Kind
		if kind != "ping" && kind != "traceroute" {
			continue
		}
		checked++
		if macBySpan[info.Record.Span] == 0 {
			t.Errorf("span %d (%s) encloses no MAC events", info.Record.Span, kind)
		}
		if info.ByLayer[telemetry.LayerMAC] == 0 {
			t.Errorf("SpanInfo for span %d (%s) counts no MAC events", info.Record.Span, kind)
		}
	}
	if checked < 2 {
		t.Fatalf("only %d ping/traceroute spans found; the script should produce at least 2", checked)
	}
}

// TestTelemetryStreamDeterminism asserts the event stream itself is
// reproducible: two recorded runs with the same seed export
// byte-identical JSONL, and a different seed produces a different
// stream.
func TestTelemetryStreamDeterminism(t *testing.T) {
	export := func(seed uint64) string {
		_, _, rec := scriptedRun(t, seed, true, false)
		var b strings.Builder
		if err := telemetry.WriteJSONL(&b, rec.Events(), telemetry.Filter{}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := export(33), export(33)
	if a != b {
		t.Fatal("same seed produced different telemetry streams")
	}
	if a == export(34) {
		t.Fatal("different seeds produced identical telemetry streams")
	}
}
