package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/diagnose"
	"liteview/internal/fault"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/telemetry"
	"liteview/internal/testbed"
)

// scriptedRun executes the same command script under the same fault
// schedule as the fault package's seed-determinism regression, with the
// telemetry recorder optionally wired in and recording. It returns the
// packet trace CSV, the diagnosis report, and the recorder (nil when
// record is false).
func scriptedRun(t *testing.T, seed uint64, record bool) (traceCSV, report string, rec *telemetry.Recorder) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(5, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	if record {
		rec = tb.Telemetry()
		rec.Start()
	}
	inj := tb.FaultInjector()
	var buf strings.Builder
	stop := tb.RecordTrace(&buf)
	defer stop()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now() + 100*time.Millisecond,
		Kind: fault.CorruptBurst, Node: 3, Prob: 0.6, Duration: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := inj.Schedule(fault.Fault{At: inj.Now() + 500*time.Millisecond,
		Kind: fault.NodeCrash, Node: 4, Duration: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	ws.Ping(1, core.PingOptions{Dst: 3, Rounds: 2, Length: 32, RouterPort: routing.GeographicPort})
	ws.Traceroute(1, core.TrOptions{Dst: 5, Length: 32, RouterPort: routing.GeographicPort})
	tb.Run(2 * time.Second)
	var targets []diagnose.Target
	for _, n := range tb.Nodes {
		targets = append(targets, diagnose.Target{ID: n.ID(), Name: n.Name(), Pos: n.Position()})
	}
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), rep.String(), rec
}

// TestRecordingDoesNotPerturb is the tentpole's zero-perturbation
// proof: the same seeded run with telemetry recording enabled yields a
// byte-identical packet trace and diagnosis report to a run where the
// recorder was never created. Emission draws no randomness and
// schedules no events, so observation cannot change the experiment.
func TestRecordingDoesNotPerturb(t *testing.T) {
	tracePlain, repPlain, _ := scriptedRun(t, 31, false)
	traceRec, repRec, rec := scriptedRun(t, 31, true)
	if tracePlain != traceRec {
		t.Fatal("telemetry recording changed the packet trace")
	}
	if repPlain != repRec {
		t.Fatalf("telemetry recording changed the diagnosis report:\n--- plain ---\n%s--- recorded ---\n%s",
			repPlain, repRec)
	}
	if len(strings.Split(tracePlain, "\n")) < 10 {
		t.Fatalf("suspiciously empty trace:\n%s", tracePlain)
	}
	// The run it didn't perturb must still have been observed in depth:
	// events from at least five distinct layers, faults included.
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
	layers := make(map[telemetry.Layer]bool)
	for _, e := range rec.Events() {
		layers[e.Layer] = true
	}
	if len(layers) < 5 {
		t.Fatalf("only %d layers observed: %v", len(layers), layers)
	}
	if !layers[telemetry.LayerFault] {
		t.Fatalf("fault transitions not recorded: %v", layers)
	}
}

// TestTelemetryStreamDeterminism asserts the event stream itself is
// reproducible: two recorded runs with the same seed export
// byte-identical JSONL, and a different seed produces a different
// stream.
func TestTelemetryStreamDeterminism(t *testing.T) {
	export := func(seed uint64) string {
		_, _, rec := scriptedRun(t, seed, true)
		var b strings.Builder
		if err := telemetry.WriteJSONL(&b, rec.Events(), telemetry.Filter{}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := export(33), export(33)
	if a != b {
		t.Fatal("same seed produced different telemetry streams")
	}
	if a == export(34) {
		t.Fatal("different seeds produced identical telemetry streams")
	}
}
