package telemetry

import "sync"

// DefaultSubscriptionDepth is the ring size Subscribe uses when the
// caller passes depth <= 0.
const DefaultSubscriptionDepth = 1024

// Subscription is a live tap on the recorder's event stream: a bounded
// ring the simulation goroutine pushes matching events into and a
// consumer goroutine drains with Poll. When the consumer falls behind,
// the oldest buffered events are overwritten and the drop counter
// advances — the bus never blocks and never grows, which is half of the
// zero-perturbation contract (the other half: subscribers only see
// events the recorder was going to record anyway, so attaching or
// detaching one cannot change a single simulated byte).
type Subscription struct {
	r      *Recorder
	filter Filter

	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest buffered event
	n       int // buffered count
	dropped uint64
	closed  bool
}

// Subscribe attaches a live tap delivering events that match f into a
// ring of the given depth (depth <= 0 selects
// DefaultSubscriptionDepth). Safe to call from any goroutine; returns
// nil on a nil recorder.
func (r *Recorder) Subscribe(f Filter, depth int) *Subscription {
	if r == nil {
		return nil
	}
	if depth <= 0 {
		depth = DefaultSubscriptionDepth
	}
	s := &Subscription{r: r, filter: f, buf: make([]Event, depth)}
	r.subMu.Lock()
	r.subs = append(r.subs, s)
	r.subMu.Unlock()
	r.hasSubs.Add(1)
	return s
}

// offer pushes one event into the ring (called on the simulation
// goroutine with the recorder's subscriber list locked).
func (s *Subscription) offer(e Event) {
	if !s.filter.Match(&e) {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		s.buf[s.head] = e
		s.head = (s.head + 1) % len(s.buf)
		s.dropped++
	} else {
		s.buf[(s.head+s.n)%len(s.buf)] = e
		s.n++
	}
	s.mu.Unlock()
}

// Poll drains up to max buffered events in arrival order (max <= 0
// drains everything buffered). Safe from any goroutine; returns nil
// when nothing is pending or the subscription is nil.
func (s *Subscription) Poll(max int) []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil
	}
	if max <= 0 || max > s.n {
		max = s.n
	}
	out := make([]Event, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, s.buf[s.head])
		s.head = (s.head + 1) % len(s.buf)
		s.n--
	}
	return out
}

// Pending reports how many events are buffered and undrained.
func (s *Subscription) Pending() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped reports how many events were overwritten because the
// consumer fell behind the ring.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the recorder. Buffered events
// remain pollable; further events are not delivered. Idempotent and
// safe from any goroutine.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	r := s.r
	r.subMu.Lock()
	for i, other := range r.subs {
		if other == s {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			r.hasSubs.Add(-1)
			break
		}
	}
	r.subMu.Unlock()
}
