package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"liteview/internal/phys"
)

// Filter selects a subset of an event stream. Zero value matches
// everything; each non-zero field is an AND condition.
type Filter struct {
	// Node keeps only events owned by this node (0 = any).
	Node phys.NodeID
	// Layer keeps only events from this layer ("" = any).
	Layer Layer
	// Kind keeps only events of this kind ("" = any).
	Kind string
	// Link is an "A-B" node-id pair; it keeps events whose from/to (or
	// src/dst) attributes — or owning node plus one of those — cover
	// both endpoints, in either direction ("" = any).
	Link string
	// Port keeps only events whose "port" attribute equals this value
	// (0 = any).
	Port int
	// Span keeps only events stamped with this command span id
	// (0 = any).
	Span uint64
}

// Match reports whether the event passes the filter.
func (f Filter) Match(e *Event) bool {
	if f.Node != 0 && e.NodeID != f.Node {
		return false
	}
	if f.Layer != "" && e.Layer != f.Layer {
		return false
	}
	if f.Kind != "" && e.Kind != f.Kind {
		return false
	}
	if f.Span != 0 && e.Span != f.Span {
		return false
	}
	if f.Port != 0 {
		v, ok := e.Attr("port")
		if !ok || v != strconv.Itoa(f.Port) {
			return false
		}
	}
	if f.Link != "" {
		a, b, ok := strings.Cut(f.Link, "-")
		if !ok {
			return false
		}
		if !linkMatch(e, strings.TrimSpace(a), strings.TrimSpace(b)) {
			return false
		}
	}
	return true
}

// linkMatch reports whether the event involves both endpoints. The
// owning node and the from/to/src/dst/next attributes all count as
// involvement, direction-insensitively.
func linkMatch(e *Event, a, b string) bool {
	has := func(id string) bool {
		if strconv.FormatUint(uint64(e.NodeID), 10) == id {
			return true
		}
		for _, key := range [...]string{"from", "to", "src", "dst", "next"} {
			if v, ok := e.Attr(key); ok && v == id {
				return true
			}
		}
		return false
	}
	return has(a) && has(b)
}

// Select returns the events matching the filter, preserving order.
func Select(events []Event, f Filter) []Event {
	out := make([]Event, 0, len(events))
	for i := range events {
		if f.Match(&events[i]) {
			out = append(out, events[i])
		}
	}
	return out
}

// AppendJSONLine appends one event as a JSON object plus newline.
// Serialization is hand-rolled over the ordered attribute slice so
// output is byte-stable across runs — the same reason the trace CSV
// writer in internal/testbed avoids maps.
func AppendJSONLine(b *strings.Builder, e *Event) {
	b.WriteString(`{"seq":`)
	b.WriteString(strconv.FormatUint(e.Seq, 10))
	b.WriteString(`,"us":`)
	b.WriteString(strconv.FormatInt(e.At.Microseconds(), 10))
	if e.Dur > 0 {
		b.WriteString(`,"dur_us":`)
		b.WriteString(strconv.FormatInt(e.Dur.Microseconds(), 10))
	}
	b.WriteString(`,"node":`)
	b.WriteString(strconv.FormatUint(uint64(e.NodeID), 10))
	b.WriteString(`,"layer":`)
	b.WriteString(strconv.Quote(string(e.Layer)))
	b.WriteString(`,"kind":`)
	b.WriteString(strconv.Quote(e.Kind))
	if e.Span != 0 {
		b.WriteString(`,"span":`)
		b.WriteString(strconv.FormatUint(e.Span, 10))
	}
	if len(e.Attrs) > 0 {
		b.WriteString(`,"attrs":{`)
		for j, a := range e.Attrs {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(a.Key))
			b.WriteByte(':')
			b.WriteString(strconv.Quote(a.Val))
		}
		b.WriteByte('}')
	}
	b.WriteString("}\n")
}

// JSONLine renders one event as its JSONL representation without the
// trailing newline — the frame format the serve watch stream and the
// /streamz SSE endpoint forward verbatim.
func JSONLine(e *Event) string {
	var b strings.Builder
	AppendJSONLine(&b, e)
	return strings.TrimSuffix(b.String(), "\n")
}

// WriteJSONL writes one JSON object per line for each event matching
// the filter.
func WriteJSONL(w io.Writer, events []Event, f Filter) error {
	var b strings.Builder
	for i := range events {
		e := &events[i]
		if !f.Match(e) {
			continue
		}
		b.Reset()
		AppendJSONLine(&b, e)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the matching events in Chrome trace-event
// JSON ({"traceEvents":[...]}), openable in chrome://tracing or
// Perfetto. Each node becomes a process (pid = node id) and each layer
// a named thread within it, so the timeline groups naturally. Span
// events (Dur > 0) become complete events ("X"); the rest become
// instants ("i").
func WriteChromeTrace(w io.Writer, events []Event, f Filter) error {
	sel := Select(events, f)

	// Metadata first: stable process/thread naming per (node, layer).
	nodes := make(map[phys.NodeID]bool)
	for i := range sel {
		nodes[sel[i].NodeID] = true
	}
	ids := make([]phys.NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	tid := make(map[Layer]int, len(Layers()))
	for i, l := range Layers() {
		tid[l] = i + 1
	}

	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	first := true
	item := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(s)
	}
	for _, id := range ids {
		item(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"node %d"}}`, id, id))
		for _, l := range Layers() {
			item(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				id, tid[l], strconv.Quote(string(l))))
		}
	}
	for i := range sel {
		e := &sel[i]
		var ev strings.Builder
		if e.Dur > 0 {
			fmt.Fprintf(&ev, `{"ph":"X","ts":%d,"dur":%d`, e.At.Microseconds(), e.Dur.Microseconds())
		} else {
			fmt.Fprintf(&ev, `{"ph":"i","ts":%d,"s":"t"`, e.At.Microseconds())
		}
		fmt.Fprintf(&ev, `,"pid":%d,"tid":%d,"cat":%s,"name":%s`,
			e.NodeID, tid[e.Layer], strconv.Quote(string(e.Layer)), strconv.Quote(e.Kind))
		if len(e.Attrs) > 0 {
			ev.WriteString(`,"args":{`)
			for j, a := range e.Attrs {
				if j > 0 {
					ev.WriteByte(',')
				}
				ev.WriteString(strconv.Quote(a.Key))
				ev.WriteByte(':')
				ev.WriteString(strconv.Quote(a.Val))
			}
			ev.WriteByte('}')
		}
		ev.WriteByte('}')
		item(ev.String())
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Summarize renders deterministic per-layer and per-kind counts of the
// matching events — the quick "what happened" view lvtrace and the
// shell print.
func Summarize(events []Event, f Filter) string {
	sel := Select(events, f)
	type key struct {
		layer Layer
		kind  string
	}
	counts := make(map[key]int)
	layers := make(map[Layer]int)
	for i := range sel {
		counts[key{sel[i].Layer, sel[i].Kind}]++
		layers[sel[i].Layer]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d events", len(sel))
	if len(sel) > 0 {
		fmt.Fprintf(&b, " (%s .. %s)", sel[0].At, sel[len(sel)-1].At)
	}
	b.WriteByte('\n')
	for _, l := range Layers() {
		n, ok := layers[l]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %6d\n", l, n)
		kinds := make([]string, 0)
		for k := range counts {
			if k.layer == l {
				kinds = append(kinds, k.kind)
			}
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			fmt.Fprintf(&b, "    %-16s %6d\n", kind, counts[key{l, kind}])
		}
	}
	return b.String()
}
