package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheusOrderAndFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.commands.total").Add(3)
	r.Counter("mac.tx").Inc()
	r.Gauge("serve.sessions.active").Set(2)
	h := r.Histogram("serve.cmd_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Families in deterministic order: counters, gauges, histograms,
	// each name-sorted; the same registry always renders the same bytes.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Fatal("two renders of the same registry differ")
	}
	idx := func(s string) int { return strings.Index(out, s) }
	if !(idx("mac_tx") < idx("serve_commands_total")) {
		t.Fatalf("counters not name-sorted:\n%s", out)
	}
	if !(idx("serve_commands_total") < idx("serve_sessions_active")) {
		t.Fatalf("gauges not after counters:\n%s", out)
	}
	if !(idx("serve_sessions_active") < idx("serve_cmd_ms_bucket")) {
		t.Fatalf("histograms not last:\n%s", out)
	}

	for _, want := range []string{
		"# HELP mac_tx LiteView counter mac.tx",
		"# TYPE mac_tx counter",
		"mac_tx 1",
		"# TYPE serve_sessions_active gauge",
		"serve_sessions_active 2",
		"# TYPE serve_cmd_ms histogram",
		`serve_cmd_ms_bucket{le="1"} 1`,
		`serve_cmd_ms_bucket{le="10"} 2`,
		`serve_cmd_ms_bucket{le="+Inf"} 3`,
		"serve_cmd_ms_sum 55.5",
		"serve_cmd_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNameSanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.errors.queue-full").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "serve_errors_queue_full 1") {
		t.Fatalf("name not sanitized:\n%s", b.String())
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
	if err := NewRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry wrote %q", b.String())
	}
}

func TestHistogramSnapshotOmitsMinMaxWhenEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("rtt", []float64{1, 10}) // created, never observed
	snap := r.Snapshot()
	for _, k := range []string{"rtt.min", "rtt.max", "rtt.mean"} {
		if _, ok := snap[k]; ok {
			t.Fatalf("empty histogram leaked %s into the snapshot: %v", k, snap)
		}
	}
	if snap["rtt.count"] != 0 {
		t.Fatalf("rtt.count = %v, want 0", snap["rtt.count"])
	}
	r.Histogram("rtt", nil).Observe(4)
	snap = r.Snapshot()
	if snap["rtt.min"] != 4 || snap["rtt.max"] != 4 || snap["rtt.mean"] != 4 {
		t.Fatalf("observed histogram stats wrong: %v", snap)
	}
}
