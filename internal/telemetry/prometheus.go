package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format: `# HELP` and `# TYPE` headers per family,
// `_bucket{le="..."}` / `_sum` / `_count` series for histograms.
// Families are emitted counters-then-gauges-then-histograms, each in
// sorted name order, so output is byte-stable — asserted by the
// ordering regression test.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# HELP %s LiteView counter %s\n", pn, name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promValue(float64(r.counters[name].v)))
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# HELP %s LiteView gauge %s\n", pn, name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promValue(r.gauges[name].v))
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# HELP %s LiteView histogram %s\n", pn, name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		// Internal bucket counts are per-bucket; Prometheus buckets are
		// cumulative, so accumulate while emitting.
		bounds, counts := h.Buckets()
		var cum uint64
		for i, bound := range bounds {
			cum += counts[i]
			le := "+Inf"
			if !math.IsInf(bound, 1) {
				le = promValue(bound)
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promValue(h.sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a dotted registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], with a leading underscore shielding names
// that would otherwise start with a digit.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(c)
			continue
		}
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promValue formats a sample value: integers bare, floats with full
// round-trip precision (Prometheus parses either).
func promValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
