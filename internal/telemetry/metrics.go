package telemetry

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a value that can move both ways (queue depth, LQI).
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates a distribution with explicit bucket bounds.
// Buckets count observations <= bound; observations beyond the last
// bound land in the implicit overflow bucket.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is overflow
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// DefaultRTTBucketsMs are histogram bounds suited to simulated ping
// round-trip times (milliseconds).
func DefaultRTTBucketsMs() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}
}

// DefaultReplayBucketsMs are histogram bounds suited to journal replay
// durations (milliseconds): a resurrection re-executes a whole command
// history, so the tail runs orders of magnitude past a single RTT.
func DefaultReplayBucketsMs() []float64 {
	return []float64{5, 20, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest sample (0 before any observation).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample (0 before any observation).
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the average sample, or NaN before any observation.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Buckets returns the (bound, cumulative-count) pairs plus the overflow
// count as the final entry with bound = +Inf.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	bounds := append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts := append([]uint64(nil), h.counts...)
	return bounds, counts
}

// Registry is a namespace of metrics, get-or-create by name. Names are
// dotted paths ("ping.rtt_ms", "link.2-3.delivered", "mac.queue.4").
// All accessors are deterministic: iteration for snapshots happens in
// sorted name order.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Nil-safe: a nil registry returns a throwaway counter so callers can
// chain r.Metrics().Counter(...).Inc() unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds are ignored on later calls; pass
// sorted ascending bounds). Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot flattens every metric to named scalar values: counters and
// gauges under their own name, histograms expanded to
// name.count/.sum/.min/.max/.mean. The map is a copy; mutate freely.
func (r *Registry) Snapshot() map[string]float64 {
	snap := make(map[string]float64)
	if r == nil {
		return snap
	}
	for name, c := range r.counters {
		snap[name] = float64(c.v)
	}
	for name, g := range r.gauges {
		snap[name] = g.v
	}
	for name, h := range r.hists {
		snap[name+".count"] = float64(h.count)
		snap[name+".sum"] = h.sum
		// min/max/mean only exist once something was observed: before
		// the first sample Min()/Max() report 0, which a snapshot must
		// not confuse with a real zero-valued sample.
		if h.count > 0 {
			snap[name+".min"] = h.min
			snap[name+".max"] = h.max
			snap[name+".mean"] = h.sum / float64(h.count)
		}
	}
	return snap
}

// Diff returns snapshot-minus-prev for every key in the current
// snapshot (keys absent from prev diff against zero). Unchanged keys
// are dropped, so the result is exactly "what moved".
func (r *Registry) Diff(prev map[string]float64) map[string]float64 {
	d := make(map[string]float64)
	for k, v := range r.Snapshot() {
		if delta := v - prev[k]; delta != 0 {
			d[k] = delta
		}
	}
	return d
}

// FormatSnapshot renders a snapshot as "name value" lines in sorted
// name order — the deterministic text form used by the shell and by
// per-experiment artifacts.
func FormatSnapshot(snap map[string]float64) string {
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		b.WriteString(k)
		b.WriteByte(' ')
		b.WriteString(formatValue(snap[k]))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the registry's current snapshot (see FormatSnapshot).
func (r *Registry) String() string { return FormatSnapshot(r.Snapshot()) }

// formatValue prints integers without a fraction and floats with up to
// three decimals, trimmed — compact and byte-stable.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}
