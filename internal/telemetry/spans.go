package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// SpanInfo pairs a completed command span's record with counts of the
// events stamped by it.
type SpanInfo struct {
	// Record is the LayerSpan event (Kind = command name, At = start,
	// Dur = extent, Span = the span's id).
	Record Event
	// Events counts the stream events stamped with this span's id,
	// excluding the record itself.
	Events int
	// ByLayer breaks Events down per emitting layer.
	ByLayer map[Layer]int
}

// Spans extracts every completed command span from an event stream in
// record order, counting the events each one covers.
func Spans(events []Event) []SpanInfo {
	counts := make(map[uint64]map[Layer]int)
	for i := range events {
		e := &events[i]
		if e.Span == 0 || e.Layer == LayerSpan {
			continue
		}
		m := counts[e.Span]
		if m == nil {
			m = make(map[Layer]int)
			counts[e.Span] = m
		}
		m[e.Layer]++
	}
	var out []SpanInfo
	for i := range events {
		e := &events[i]
		if e.Layer != LayerSpan {
			continue
		}
		info := SpanInfo{Record: *e, ByLayer: counts[e.Span]}
		for _, n := range info.ByLayer {
			info.Events += n
		}
		out = append(out, info)
	}
	return out
}

// SummarizeSpans renders a deterministic table of the command spans in
// the stream — the `lvtrace -spans` view: which commands ran, how long
// each took in virtual time, and how many events per layer each caused.
func SummarizeSpans(events []Event) string {
	spans := Spans(events)
	var b strings.Builder
	fmt.Fprintf(&b, "%d command span(s)\n", len(spans))
	for _, s := range spans {
		verdict := ""
		if v, ok := s.Record.Attr("verdict"); ok {
			verdict = " verdict=" + v
		}
		dst := ""
		if v, ok := s.Record.Attr("dst"); ok {
			dst = " dst=" + v
		}
		fmt.Fprintf(&b, "  span %-3d %-12s node=%d%s%s at=%s dur=%s events=%d\n",
			s.Record.Span, s.Record.Kind, s.Record.NodeID, dst, verdict,
			s.Record.At, s.Record.Dur, s.Events)
		if len(s.ByLayer) > 0 {
			known := make(map[Layer]bool)
			parts := make([]string, 0, len(s.ByLayer))
			for _, l := range Layers() {
				known[l] = true
				if n, ok := s.ByLayer[l]; ok {
					parts = append(parts, fmt.Sprintf("%s=%d", l, n))
				}
			}
			var extra []string
			for l, n := range s.ByLayer {
				if !known[l] {
					extra = append(extra, fmt.Sprintf("%s=%d", l, n))
				}
			}
			sort.Strings(extra)
			parts = append(parts, extra...)
			fmt.Fprintf(&b, "      %s\n", strings.Join(parts, " "))
		}
	}
	return b.String()
}
