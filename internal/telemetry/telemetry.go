// Package telemetry is the cross-layer observability spine of the
// reproduction: a deterministic, zero-perturbation event bus plus a
// metrics registry that every layer publishes into — the medium
// (per-receiver delivery outcomes, SINR, corruption cause), the MAC
// (CCA results, backoffs, retries, queue depth), routing (next-hop
// decisions, drops), the port stack (dispatch), the reliable exchange
// (batches, acks, timeouts, aborts), the runtime controllers (command
// execution), and the fault injector (activations).
//
// The determinism contract mirrors the fault injector's: recording is
// opt-in, and emitting events never draws from any random stream,
// never schedules engine events, and never changes a code path in the
// instrumented layers. A run with telemetry enabled therefore produces
// a byte-identical packet trace and diagnosis report to the same
// seeded run without it — asserted by the regression test in
// determinism_test.go.
//
// Every event is stamped with the virtual clock, the owning node, the
// layer, and a monotonic sequence number, so an exported stream is a
// totally ordered timeline of everything the simulation did.
package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"

	"liteview/internal/phys"
	"liteview/internal/sim"
)

// Layer names the subsystem an event came from. The values double as
// the category strings in exported traces.
type Layer string

// The instrumented layers, bottom-up.
const (
	LayerMedium     Layer = "medium"
	LayerMAC        Layer = "mac"
	LayerNeighbor   Layer = "neighbor"
	LayerStack      Layer = "stack"
	LayerRouting    Layer = "routing"
	LayerReliable   Layer = "reliable"
	LayerController Layer = "controller"
	LayerFault      Layer = "fault"
	// LayerSpan carries command-scoped span records: one event per
	// completed workstation command (ping, traceroute, fault, ...),
	// stamped At the command's start with Dur covering its extent.
	LayerSpan Layer = "span"
)

// Layers lists every known layer in stack order (bottom-up). Exporters
// use the position as a stable thread id.
func Layers() []Layer {
	return []Layer{LayerMedium, LayerMAC, LayerNeighbor, LayerStack,
		LayerRouting, LayerReliable, LayerController, LayerFault,
		LayerSpan}
}

// Attr is one key-value annotation on an event. Attributes are an
// ordered slice, not a map, so exports are deterministic.
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(key, val string) Attr { return Attr{Key: key, Val: val} }

// Int builds an integer attribute.
func Int(key string, val int) Attr { return Attr{Key: key, Val: strconv.Itoa(val)} }

// Uint64 builds an unsigned integer attribute.
func Uint64(key string, val uint64) Attr {
	return Attr{Key: key, Val: strconv.FormatUint(val, 10)}
}

// Node builds a node-reference attribute.
func Node(key string, id phys.NodeID) Attr {
	return Attr{Key: key, Val: strconv.FormatUint(uint64(id), 10)}
}

// Float builds a fixed-precision float attribute (two decimals — the
// precision the paper's tables use; fixed so exports are byte-stable).
func Float(key string, val float64) Attr {
	return Attr{Key: key, Val: strconv.FormatFloat(val, 'f', 2, 64)}
}

// Bool builds a boolean attribute.
func Bool(key string, val bool) Attr {
	if val {
		return Attr{Key: key, Val: "true"}
	}
	return Attr{Key: key, Val: "false"}
}

// Event is one recorded observation.
type Event struct {
	// Seq is the monotonic sequence number assigned at recording time;
	// it totally orders the stream (the virtual clock alone does not:
	// many events share an instant).
	Seq uint64
	// At is the virtual time of the event.
	At sim.Time
	// Dur is the event's extent for span-shaped events (a frame's
	// airtime); zero for instants.
	Dur sim.Time
	// NodeID is the owning node (the receiver for delivery outcomes,
	// the transmitter for transmissions); 0 for network-wide events.
	NodeID phys.NodeID
	// Layer is the emitting subsystem.
	Layer Layer
	// Kind classifies the event within its layer ("tx", "rx", "cca",
	// "ack-timeout", "command", ...).
	Kind string
	// Span is the id of the workstation command span active when the
	// event was recorded (0 = none). For LayerSpan records it is the
	// span's own id.
	Span uint64
	// Attrs carries the event's key-value detail in emission order.
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Event) Attr(key string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Recorder is the event bus. One recorder serves a whole deployment:
// every instrumented component holds a pointer and publishes through
// it. A nil *Recorder is valid and records nothing, so components can
// emit unconditionally:
//
//	m.tel.Emit(...)   // no-op when m.tel is nil or stopped
//
// Recording is off until Start is called; while off, Emit returns
// before evaluating anything.
type Recorder struct {
	eng       *sim.Engine
	recording bool
	seq       uint64
	events    []Event
	reg       *Registry

	// cap bounds the retained event slice (0 = unbounded). Long-lived
	// daemons set it so a tenant recording for hours cannot balloon.
	cap int

	// Command-span state. Touched only from the simulation goroutine,
	// like seq and events.
	spanSeq   uint64
	spanDepth int
	active    spanState

	// Subscribers live outside the deterministic state: the list is
	// mutex-guarded so consumer goroutines attach and detach while the
	// simulation goroutine fans out. hasSubs keeps the no-subscriber
	// emit path to one atomic load.
	hasSubs atomic.Int32
	subMu   sync.Mutex
	subs    []*Subscription
}

// spanState is the currently open outermost command span.
type spanState struct {
	id    uint64
	node  phys.NodeID
	name  string
	start sim.Time
	attrs []Attr
}

// NewRecorder builds a stopped recorder on the engine's virtual clock.
func NewRecorder(eng *sim.Engine) *Recorder {
	return &Recorder{eng: eng, reg: NewRegistry()}
}

// Start begins recording. Events emitted while stopped are dropped.
func (r *Recorder) Start() { r.recording = true }

// Stop pauses recording without discarding what was captured.
func (r *Recorder) Stop() { r.recording = false }

// Recording reports whether events are being captured. It is safe on a
// nil receiver (reports false), which is what lets instrumentation
// sites guard expensive attribute formatting with one call.
func (r *Recorder) Recording() bool { return r != nil && r.recording }

// Metrics returns the recorder's registry (nil-safe: returns nil when
// the recorder itself is nil).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Emit records one instant event. No-op when the recorder is nil or
// stopped.
func (r *Recorder) Emit(node phys.NodeID, layer Layer, kind string, attrs ...Attr) {
	r.EmitSpan(node, layer, kind, 0, attrs...)
}

// EmitSpan records one event with a duration (a span on the exported
// timeline). No-op when the recorder is nil or stopped.
func (r *Recorder) EmitSpan(node phys.NodeID, layer Layer, kind string, dur sim.Time, attrs ...Attr) {
	if !r.Recording() {
		return
	}
	r.seq++
	r.record(Event{
		Seq:    r.seq,
		At:     r.eng.Now(),
		Dur:    dur,
		NodeID: node,
		Layer:  layer,
		Kind:   kind,
		Span:   r.active.id,
		Attrs:  attrs,
	})
}

// record appends one event, enforces the retention cap, and fans the
// event out to subscribers. Subscriber fan-out happens after the append
// and touches none of the deterministic state, which is what makes
// attaching a Subscription provably zero-perturbation (DESIGN §12).
func (r *Recorder) record(e Event) {
	r.events = append(r.events, e)
	if r.cap > 0 && len(r.events) > 2*r.cap {
		keep := r.events[len(r.events)-r.cap:]
		n := copy(r.events, keep)
		r.events = r.events[:n]
	}
	if r.hasSubs.Load() == 0 {
		return
	}
	r.subMu.Lock()
	for _, s := range r.subs {
		s.offer(e)
	}
	r.subMu.Unlock()
}

// SetEventCap bounds the number of retained events; once exceeded the
// oldest are discarded (amortized: the slice grows to twice the cap
// before trimming). 0 restores unbounded retention. Subscribers see
// every event regardless of the cap — it only limits what Events()
// later returns.
func (r *Recorder) SetEventCap(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.cap = n
	if n > 0 && len(r.events) > n {
		keep := r.events[len(r.events)-n:]
		m := copy(r.events, keep)
		r.events = r.events[:m]
	}
}

// BeginSpan opens a command-scoped span owned by node. Every event
// emitted before the matching EndSpan is stamped with the returned span
// id, so a trace can answer "which transmissions did this command
// cause". Spans do not nest: the outermost wins, and nested calls
// return 0 (EndSpan(0) is a harmless no-op close). Returns 0 when the
// recorder is nil or stopped.
func (r *Recorder) BeginSpan(node phys.NodeID, name string, attrs ...Attr) uint64 {
	if r == nil {
		return 0
	}
	r.spanDepth++
	if r.spanDepth > 1 || !r.recording {
		return 0
	}
	r.spanSeq++
	r.active = spanState{
		id:    r.spanSeq,
		node:  node,
		name:  name,
		start: r.eng.Now(),
		attrs: attrs,
	}
	return r.active.id
}

// EndSpan closes the span opened by BeginSpan. When id is the live
// outermost span, a LayerSpan event is recorded At the span's start
// with Dur covering its extent, carrying the open attrs plus any
// closing attrs (typically the command verdict).
func (r *Recorder) EndSpan(id uint64, attrs ...Attr) {
	if r == nil || r.spanDepth == 0 {
		return
	}
	r.spanDepth--
	if id == 0 || id != r.active.id {
		return
	}
	sp := r.active
	r.active = spanState{}
	if !r.recording {
		return
	}
	all := sp.attrs
	if len(attrs) > 0 {
		all = append(append([]Attr(nil), sp.attrs...), attrs...)
	}
	r.seq++
	r.record(Event{
		Seq:    r.seq,
		At:     sp.start,
		Dur:    r.eng.Now() - sp.start,
		NodeID: sp.node,
		Layer:  LayerSpan,
		Kind:   sp.name,
		Span:   sp.id,
		Attrs:  all,
	})
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns a copy of the recorded stream in sequence order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return append([]Event(nil), r.events...)
}

// Clear discards recorded events and resets the metrics registry; the
// sequence counter keeps counting so replays never reuse numbers.
func (r *Recorder) Clear() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.reg = NewRegistry()
}
