package bench

import (
	"fmt"
	"time"

	"liteview/internal/core"
	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/neighbor"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/testbed"
	"liteview/internal/trace"
)

// PingVsTraceroute regenerates ablation D2: the paper argues traceroute
// is "fundamentally more scalable" than the multi-hop ping because it
// ships each hop's quality in its own report instead of consuming
// in-packet padding. We measure both mechanisms on the same 8-hop path
// and compare packet cost against diagnosable path length.
func PingVsTraceroute(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "D2", Title: "multi-hop ping vs traceroute on the same 8-hop path"}
	dep, err := lineDeployment(9, 20, seed, 0, 0, routing.DefaultConfig())
	if err != nil {
		return nil, err
	}
	tb, ws := dep.tb, dep.ws

	before := sentControl(tb, ws)
	pingOut, err := ws.Ping(1, core.PingOptions{Dst: 9, Rounds: 1, Length: 16, RouterPort: routing.GeographicPort})
	if err != nil {
		return nil, err
	}
	pingPkts := sentControl(tb, ws) - before

	before = sentControl(tb, ws)
	trOut, err := ws.Traceroute(1, core.TrOptions{Dst: 9, Length: 16, RouterPort: routing.GeographicPort})
	if err != nil {
		return nil, err
	}
	trPkts := sentControl(tb, ws) - before

	pingHops := 0
	if len(pingOut.Results) > 0 {
		for _, h := range pingOut.Results[0].HopQuality {
			if !h.Back {
				pingHops++
			}
		}
	}
	r.Table = trace.NewTable("mechanism", "control_packets", "hops_diagnosed", "max_diagnosable_hops")
	r.Table.AddRow("multi-hop ping (16B probe)", pingPkts, pingHops, stack.MaxPadHops(16))
	r.Table.AddRow("traceroute", trPkts, len(trOut.Reports), "unbounded")

	r.check("ping is cheaper in packets", pingPkts < trPkts,
		"ping %d vs traceroute %d packets", pingPkts, trPkts)
	r.check("ping's reach is bounded by padding", stack.MaxPadHops(16) == 24,
		"16-byte probe records at most %d hops", stack.MaxPadHops(16))
	r.check("traceroute diagnoses every hop", len(trOut.Reports) == 8,
		"%d per-hop reports", len(trOut.Reports))
	r.note("the crossover: below the padding bound ping is cheaper; beyond it only traceroute works, at a quadratic-in-hops report cost")
	return r, nil
}

// AdaptiveBatch regenerates ablation D3: the reliable exchange
// protocol's dynamic batch sizing ("a smaller batch size is preferred
// when packets are more likely to get lost") against a fixed batch on
// a lossy one-hop link.
//
// The exchange protocol exists because the paper's MAC offers no
// link-layer acknowledgements ("broadcasted over the radio"), so this
// ablation runs over a raw, ack-less MAC: end-to-end recovery is
// entirely the exchange protocol's job, which is the regime the batch
// adaptation was designed for.
func AdaptiveBatch(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "D3", Title: "reliable exchange: adaptive vs fixed batch on a lossy link"}

	type outcome struct {
		completed  int
		retx       uint64
		frames     uint64
		elapsedSum sim.Time
	}
	const trials = 10
	const messages = 30
	// Each trial is a fully independent simulation (its own engine,
	// medium, and endpoints seeded by trialSeed), so trials fan out over
	// the worker pool; the reduction below walks them in trial order.
	runTrial := func(fixed bool, trial int) (completed bool, elapsed sim.Time, retx, frames uint64, err error) {
		eng := sim.NewEngine(trialSeed(seed, trial))
		model := phys.DefaultModel(trialSeed(seed, trial))
		model.ShadowSigma = 0
		model.AsymSigma = 0
		med := medium.New(eng, model)
		mkEp := func(id phys.NodeID, x float64) (*core.Endpoint, error) {
			rad, err := radio.New(17)
			if err != nil {
				return nil, err
			}
			macCfg := mac.DefaultConfig()
			macCfg.LinkAcks = false // isolate the exchange protocol
			var st *stack.Stack
			m, err := mac.New(eng, med, rad, id, phys.Position{X: x}, macCfg,
				func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
			if err != nil {
				return nil, err
			}
			st = stack.New(eng, m)
			cfg := core.DefaultReliableConfig()
			cfg.MaxRetries = 20
			cfg.FixedBatch = fixed
			if fixed {
				cfg.InitBatch = cfg.MaxBatch
			}
			return core.NewEndpoint(eng, st, cfg, func(phys.NodeID, []byte, medium.RxInfo, bool) {})
		}
		sender, err := mkEp(1, 0)
		if err != nil {
			return false, 0, 0, 0, err
		}
		// ~50 m puts the link on the PRR cliff: real loss, still
		// workable.
		if _, err := mkEp(2, 50); err != nil {
			return false, 0, 0, 0, err
		}
		msgs := make([][]byte, messages)
		for i := range msgs {
			msgs[i] = []byte{byte(i)}
		}
		start := eng.Now()
		var done bool
		var failed error
		sender.Send(2, msgs, 0, func(err error) { done = true; failed = err })
		eng.Run()
		return done && failed == nil, eng.Now() - start,
			sender.Stats().Retransmissions, sender.Stats().DataSent, nil
	}
	run := func(fixed bool) (outcome, error) {
		type trialOut struct {
			completed bool
			elapsed   sim.Time
			retx      uint64
			frames    uint64
		}
		outs := make([]trialOut, trials)
		err := opt.forEach(trials, func(trial int) error {
			completed, elapsed, retx, frames, err := runTrial(fixed, trial)
			if err != nil {
				return err
			}
			outs[trial] = trialOut{completed, elapsed, retx, frames}
			return nil
		})
		if err != nil {
			return outcome{}, err
		}
		var o outcome
		for _, t := range outs {
			if t.completed {
				o.completed++
				o.elapsedSum += t.elapsed
			}
			o.retx += t.retx
			o.frames += t.frames
		}
		return o, nil
	}
	var adaptive, fixed outcome
	if err := opt.forEach(2, func(i int) error {
		var err error
		if i == 0 {
			adaptive, err = run(false)
		} else {
			fixed, err = run(true)
		}
		return err
	}); err != nil {
		return nil, err
	}
	r.Trials = 2 * trials
	meanMs := func(o outcome) float64 {
		if o.completed == 0 {
			return 0
		}
		return ms(o.elapsedSum / sim.Time(o.completed))
	}
	r.Table = trace.NewTable("policy", "completed", "retx_rounds", "data_frames", "mean_completion_ms")
	r.Table.AddRow("adaptive (AIMD batch)", fmt.Sprintf("%d/%d", adaptive.completed, trials), adaptive.retx, adaptive.frames, meanMs(adaptive))
	r.Table.AddRow("fixed (batch=8)", fmt.Sprintf("%d/%d", fixed.completed, trials), fixed.retx, fixed.frames, meanMs(fixed))
	r.check("adaptive completes at least as often", adaptive.completed >= fixed.completed,
		"%d vs %d transfers completed", adaptive.completed, fixed.completed)
	r.check("adaptive transfers complete reliably", adaptive.completed >= trials*8/10,
		"%d/%d completed on the lossy link", adaptive.completed, trials)
	r.check("adaptive wastes fewer frames", adaptive.frames <= fixed.frames,
		"adaptive sent %d data frames vs fixed %d for the same %d×%d messages",
		adaptive.frames, fixed.frames, trials, messages)
	r.note("loss on this link ≈ 20-25%% per frame; a fixed batch keeps shipping whole windows into it while the adaptive sender shrinks to the loss rate")
	return r, nil
}

// NeighborSharing regenerates ablation D4: the paper's argument for a
// single kernel-owned neighbor table — per-protocol copies multiply the
// RAM cost on a 4 KB mote.
func NeighborSharing(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "D4", Title: "kernel-shared neighbor table vs per-protocol copies"}
	_ = seed
	// A mote-resident entry: id(2) + flags(1) + lqi(1) + rssi(1) +
	// prr(1) + last-heard(2) + beacon seq(2) + name(14) = 24 bytes.
	const entryBytes = 24
	const protocols = 3 // geographic, flooding, tree all need neighbors
	capacity := neighbor.DefaultCapacity
	shared := entryBytes * capacity
	perProto := shared * protocols
	r.Table = trace.NewTable("design", "tables", "ram_bytes", "pct_of_4KB")
	r.Table.AddRow("kernel-shared (LiteView)", 1, shared, float64(shared)*100/4096)
	r.Table.AddRow("per-protocol copies", protocols, perProto, float64(perProto)*100/4096)
	r.check("sharing saves RAM", shared < perProto, "%d vs %d bytes", shared, perProto)
	r.check("per-protocol copies are untenable", perProto > 1024,
		"%d bytes is more than a quarter of the mote's RAM", perProto)
	r.note("all three bundled protocols consult the one kernel table; the blacklist flag therefore steers every protocol at once")
	return r, nil
}

// ProtocolComparison regenerates ablation D5: the paper's protocol-
// selection workflow — "users may install each protocol sequentially,
// and measure the protocol performance" with the very same commands.
// We install geographic forwarding and the on-demand protocol side by
// side and ping across eight hops over each: the proactive protocol
// answers immediately, the on-demand one pays a route-discovery cost on
// the first round and then matches.
func ProtocolComparison(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "D5", Title: "same ping command over two routing protocols"}
	tbOpt := testbed.DefaultOptions(seed)
	tbOpt.ShadowSigma = 0
	tbOpt.AsymSigma = 0
	tb, err := testbed.Line(9, 20, tbOpt)
	if err != nil {
		return nil, err
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		return nil, err
	}
	if err := tb.AttachOnDemand(routing.DefaultConfig()); err != nil {
		return nil, err
	}
	if _, err := tb.InstallLiteView(); err != nil {
		return nil, err
	}
	tb.WarmUp(20 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		return nil, err
	}
	type row struct {
		name           string
		received, lost int
		firstRTT       float64
		laterMeanRTT   float64
		controlPackets uint64
	}
	measure := func(port byte) (row, error) {
		before := sentControl(tb, ws)
		out, err := ws.Ping(1, core.PingOptions{
			Dst: 9, Rounds: 4, Length: 16, RouterPort: port,
			Timeout: 3 * time.Second,
		})
		if err != nil {
			return row{}, err
		}
		rw := row{name: out.Protocol, received: out.Received, lost: out.Lost,
			controlPackets: sentControl(tb, ws) - before}
		n := 0
		for _, res := range out.Results {
			if res.Lost {
				continue
			}
			if res.Seq == 0 {
				rw.firstRTT = float64(res.RTT) / 1000
				continue
			}
			rw.laterMeanRTT += float64(res.RTT) / 1000
			n++
		}
		if n > 0 {
			rw.laterMeanRTT /= float64(n)
		}
		return rw, nil
	}
	geo, err := measure(routing.GeographicPort)
	if err != nil {
		return nil, fmt.Errorf("geographic: %w", err)
	}
	od, err := measure(routing.OnDemandPort)
	if err != nil {
		return nil, fmt.Errorf("on-demand: %w", err)
	}
	r.Table = trace.NewTable("protocol", "recv", "lost", "first_rtt_ms", "warm_rtt_ms", "control_pkts")
	for _, rw := range []row{geo, od} {
		r.Table.AddRow(rw.name, rw.received, rw.lost, rw.firstRTT, rw.laterMeanRTT, rw.controlPackets)
	}
	r.check("both protocols deliver", geo.received >= 3 && od.received >= 3,
		"geo %d/4, on-demand %d/4", geo.received, od.received)
	r.check("discovery makes the first on-demand round slower", od.firstRTT > geo.firstRTT,
		"first round %.1f ms vs %.1f ms", od.firstRTT, geo.firstRTT)
	r.check("warm rounds are comparable", od.laterMeanRTT < geo.laterMeanRTT*3+50,
		"warm %.1f ms vs %.1f ms", od.laterMeanRTT, geo.laterMeanRTT)
	r.note("identical command binaries; the protocol is chosen at runtime by port number")
	return r, nil
}

// EnergyTuning regenerates ablation D6: the deployment-tuning payoff
// the paper's introduction motivates. The same diagnosis workload runs
// at full power and at a tuned-down level that still clears the link
// quality bar; transmit energy falls with the PA current, while the
// totals show why duty cycling (not power tuning) is the real lever —
// idle listening dominates an always-on mote.
func EnergyTuning(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "D6", Title: "energy: full power vs tuned power for the same workload"}
	run := func(level int) (txJ, rxJ float64, received int, err error) {
		dep, err := lineDeployment(5, 15, seed, 0, 0, routing.DefaultConfig())
		if err != nil {
			return 0, 0, 0, err
		}
		for _, n := range dep.tb.Nodes {
			if err := n.Radio().SetPowerLevel(level); err != nil {
				return 0, 0, 0, err
			}
		}
		// The workload: three multi-round pings across the line.
		for i := 0; i < 3; i++ {
			out, err := dep.ws.Ping(1, core.PingOptions{Dst: 5, Rounds: 3, Length: 32, RouterPort: routing.GeographicPort})
			if err != nil {
				return 0, 0, 0, err
			}
			received += out.Received
		}
		for _, n := range dep.tb.Nodes {
			st := n.Energy().Stats()
			txJ += st.TXJ
			rxJ += st.RXJ
		}
		return txJ, rxJ, received, nil
	}
	// The two power levels are independent deployments; fan them out.
	var txHi, rxHi, txLo, rxLo float64
	var recvHi, recvLo int
	if err := opt.forEach(2, func(i int) error {
		if i == 0 {
			var err error
			txHi, rxHi, recvHi, err = run(31)
			if err != nil {
				return fmt.Errorf("PA 31: %w", err)
			}
			return nil
		}
		var err error
		txLo, rxLo, recvLo, err = run(15)
		if err != nil {
			return fmt.Errorf("PA 15: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	r.Trials = 2
	r.Table = trace.NewTable("power_level", "tx_J", "rx_idle_J", "pings_received")
	r.Table.AddRow(31, txHi, rxHi, recvHi)
	r.Table.AddRow(15, txLo, rxLo, recvLo)
	r.check("tuned power still delivers", recvLo >= recvHi-1, "%d vs %d rounds received", recvLo, recvHi)
	r.check("tuned power cuts TX energy", txLo < txHi, "%.4f J vs %.4f J", txLo, txHi)
	ratio := txLo / txHi
	want := radio.TXCurrentMA(15) / radio.TXCurrentMA(31)
	r.check("saving tracks the PA current ratio", ratio > want-0.15 && ratio < want+0.15,
		"measured %.2f, datasheet currents predict %.2f", ratio, want)
	r.check("idle listening dominates regardless", rxLo > txLo*10 && rxHi > txHi*10,
		"rx/tx = %.0f× at PA 15", rxLo/txLo)
	r.note("power tuning trims the TX slice; the big slice is the always-on receiver (the motivation for LPL duty cycling)")
	return r, nil
}

// DutyCycling regenerates ablation D7: always-on listening vs low-power
// listening (LPL) for the same deployment and diagnosis workload. The
// duty cycle divides the energy bill by an order of magnitude and
// multiplies the projected lifetime accordingly; the price is wake-up
// latency on every hop, which LiteView's own RTT readings expose.
func DutyCycling(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "D7", Title: "always-on vs low-power listening (LPL)"}
	type outcome struct {
		energyJ   float64
		lifetimeH uint32
		rttMs     float64
		rttMaxMs  float64
		received  int
	}
	run := func(lpl bool) (outcome, error) {
		var o outcome
		tbOpt := testbed.DefaultOptions(seed)
		tbOpt.ShadowSigma = 0
		tbOpt.AsymSigma = 0
		tbOpt.LPL = lpl
		tbOpt.BeaconPeriod = 10 * time.Second
		tb, err := testbed.Line(2, 5, tbOpt)
		if err != nil {
			return o, err
		}
		if _, err := tb.InstallLiteView(); err != nil {
			return o, err
		}
		tb.WarmUp(120 * time.Second)
		ws, err := tb.NewWorkstation(phys.Position{X: -2})
		if err != nil {
			return o, err
		}
		// Cold probes: single rounds spaced beyond the linger window,
		// so each LPL ping pays a fresh wake-up (back-to-back rounds
		// would find the node still awake from the previous exchange).
		n := 0
		for i := 0; i < 4; i++ {
			out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32, Timeout: time.Second})
			if err != nil {
				return o, err
			}
			o.received += out.Received
			for _, res := range out.Results {
				if !res.Lost {
					ms := float64(res.RTT) / 1000
					o.rttMs += ms
					if ms > o.rttMaxMs {
						o.rttMaxMs = ms
					}
					n++
				}
			}
			tb.Run(2 * time.Second) // let the pair fall back asleep
		}
		if n > 0 {
			o.rttMs /= float64(n)
		}
		for _, node := range tb.Nodes {
			o.energyJ += node.Energy().ConsumedJ()
		}
		es, err := ws.Energy(2)
		if err != nil {
			return o, err
		}
		o.lifetimeH = es.EstimatedLifetimeHours
		return o, nil
	}
	// Always-on and LPL are independent deployments; fan them out.
	var on, lpl outcome
	if err := opt.forEach(2, func(i int) error {
		if i == 0 {
			var err error
			on, err = run(false)
			if err != nil {
				return fmt.Errorf("always-on: %w", err)
			}
			return nil
		}
		var err error
		lpl, err = run(true)
		if err != nil {
			return fmt.Errorf("LPL: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	r.Trials = 2
	r.Table = trace.NewTable("mac_mode", "deployment_J_2min", "lifetime_h", "rtt_mean_ms", "rtt_max_ms", "pings_recv")
	r.Table.AddRow("always-on", on.energyJ, on.lifetimeH, on.rttMs, on.rttMaxMs, on.received)
	r.Table.AddRow("LPL (100 ms interval)", lpl.energyJ, lpl.lifetimeH, lpl.rttMs, lpl.rttMaxMs, lpl.received)
	r.check("both modes deliver", on.received >= 3 && lpl.received >= 3,
		"always-on %d/4, LPL %d/4", on.received, lpl.received)
	r.check("LPL divides the energy bill", lpl.energyJ < on.energyJ/3,
		"%.2f J vs %.2f J over two minutes", lpl.energyJ, on.energyJ)
	r.check("LPL multiplies the lifetime", lpl.lifetimeH > on.lifetimeH*4,
		"%d h vs %d h projected", lpl.lifetimeH, on.lifetimeH)
	r.check("latency is the price (worst cold probe)", lpl.rttMaxMs > on.rttMaxMs,
		"max RTT %.1f ms vs %.1f ms", lpl.rttMaxMs, on.rttMaxMs)
	r.note("the always-on lifetime matches D6's ~5-day bound; duty cycling is what deployments actually ship")
	return r, nil
}
