package bench

import (
	"fmt"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/telemetry"
	"liteview/internal/testbed"
	"liteview/internal/trace"
)

// Scale exercises the medium's large-deployment path: a dense square
// grid (400 nodes, beyond the paper's 30-mote testbed by an order of
// magnitude), with the same management commands the paper evaluates —
// a ping to the workstation's neighbour and a traceroute into the grid
// interior — plus wall-clock throughput figures (how many virtual
// nanoseconds each real second buys). The reachability index and
// link-gain cache are what make this tractable; BenchmarkMediumDeliver
// in the repository root quantifies the speedup against the legacy
// full fan-out.
func Scale(seed uint64, opt Options) (*Result, error) {
	side := 20
	warmup := 10 * time.Second
	if opt.Short {
		side = 10
		warmup = 6 * time.Second
	}
	r := &Result{ID: "SCALE", Title: fmt.Sprintf("medium scalability: commands on a %d×%d grid", side, side)}
	r.Table = trace.NewTable("nodes", "tx_frames", "deliveries", "sim_s", "wall_ms", "wall_ns_per_sim_s", "tx_per_wall_s")

	tbOpt := testbed.DefaultOptions(seed)
	tbOpt.ShadowSigma = 0
	tbOpt.AsymSigma = 0
	tb, err := testbed.Grid(side, side, 14, tbOpt)
	if err != nil {
		return nil, err
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		return nil, err
	}
	if _, err := tb.InstallLiteView(); err != nil {
		return nil, err
	}
	var rec *telemetry.Recorder
	if opt.tracing() {
		rec = tb.Telemetry()
		rec.Start()
	}

	start := time.Now()
	tb.WarmUp(warmup)
	ws, err := tb.NewWorkstation(phys.Position{X: -2, Y: -2})
	if err != nil {
		return nil, err
	}
	p, perr := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2, Length: 32})
	if p == nil {
		return nil, fmt.Errorf("ping returned no output: %w", perr)
	}
	center := phys.NodeID(side*side/2 + side/2 + 1)
	tr, terr := ws.Traceroute(1, core.TrOptions{Dst: center, Length: 32, RouterPort: routing.GeographicPort})
	if tr == nil {
		return nil, fmt.Errorf("traceroute returned no output: %w", terr)
	}
	wall := time.Since(start)

	stats := tb.Med.Stats()
	simS := float64(tb.Eng.Now()) / float64(time.Second)
	wallS := wall.Seconds()
	nsPerSimS := 0.0
	if simS > 0 {
		nsPerSimS = float64(wall.Nanoseconds()) / simS
	}
	txPerWallS := 0.0
	if wallS > 0 {
		txPerWallS = float64(stats.Transmitted) / wallS
	}
	if opt.NoWallClock {
		// Wall-clock readings vary run to run; the determinism
		// regression compares rendered output byte for byte, so the
		// real-time columns collapse to placeholders.
		r.Table.AddRow(side*side, stats.Transmitted, stats.Delivered, simS, "-", "-", "-")
	} else {
		r.Table.AddRow(side*side, stats.Transmitted, stats.Delivered, simS,
			float64(wall.Milliseconds()), nsPerSimS, txPerWallS)
	}

	r.note("ping 1→2: %d/%d replies (%s); traceroute →%d: %d hop reports (%s)",
		p.Received, p.Sent, p.Verdict, center, len(tr.Reports), tr.Verdict)
	r.check("grid built at scale", tb.Med.Nodes() == side*side+1,
		"%d nodes attached (grid + workstation)", tb.Med.Nodes())
	r.check("commands terminated", true,
		"ping and traceroute both returned inside their windows")
	r.check("neighbour ping answered", p.Received > 0,
		"%d/%d replies", p.Received, p.Sent)
	r.check("traceroute progressed", len(tr.Reports) > 0,
		"%d hop reports toward node %d", len(tr.Reports), center)
	r.check("traffic flowed at scale", stats.Transmitted > 0 && stats.Delivered > 0,
		"%d frames on the air, %d deliveries", stats.Transmitted, stats.Delivered)
	if opt.NoWallClock {
		r.check("throughput measured", simS > 0 && wallS > 0,
			"%.1f sim seconds simulated (wall-clock readings suppressed)", simS)
	} else {
		r.check("throughput measured", simS > 0 && wallS > 0,
			"%.1f sim seconds in %.0f ms wall (%.0f ns wall per sim second)",
			simS, float64(wall.Milliseconds()), nsPerSimS)
	}

	if rec != nil {
		rec.Stop()
		if err := writeTelemetry(opt, "scale", rec); err != nil {
			return nil, fmt.Errorf("telemetry artifacts: %w", err)
		}
	}
	r.Trials = 1
	return r, nil
}
