package bench

import (
	"fmt"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/telemetry"
	"liteview/internal/testbed"
	"liteview/internal/trace"
)

// scaleDeployment is one row of the scale experiment: a square grid
// driven through warm-up plus the paper's management commands (a ping
// to the workstation's neighbour and a traceroute into the interior).
type scaleDeployment struct {
	side   int
	warmup time.Duration
	// shard runs the deployment on the spatially sharded medium with
	// opt.MediumWorkers assessment lanes. Sharding changes throughput,
	// not results (the worker-invariance regressions in internal/medium
	// pin that), so rows differ only in their wall-clock columns.
	shard bool
	// dst is the traceroute destination. The 20×20 grid targets its
	// centre, as the paper's experiment does; the 10k grid targets a
	// near-interior node so the route fits the command window.
	dst phys.NodeID
}

// runScaleDeployment builds and drives one deployment, appends its
// table row, and reports the figures the shape checks need.
func runScaleDeployment(r *Result, d scaleDeployment, seed uint64, opt Options) error {
	tbOpt := testbed.DefaultOptions(seed)
	tbOpt.ShadowSigma = 0
	tbOpt.AsymSigma = 0
	medWorkers := 0
	if d.shard {
		tbOpt.ShardMedium = true
		tbOpt.MediumWorkers = opt.MediumWorkers
		medWorkers = opt.MediumWorkers
		if medWorkers < 1 {
			medWorkers = 1
		}
	}
	tb, err := testbed.Grid(d.side, d.side, 14, tbOpt)
	if err != nil {
		return err
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		return err
	}
	if _, err := tb.InstallLiteView(); err != nil {
		return err
	}
	var rec *telemetry.Recorder
	if opt.tracing() && !d.shard {
		// One telemetry artifact per run is plenty; the 10k deployment
		// would dwarf every other trace in the suite.
		rec = tb.Telemetry()
		rec.Start()
	}

	start := time.Now()
	tb.WarmUp(d.warmup)
	ws, err := tb.NewWorkstation(phys.Position{X: -2, Y: -2})
	if err != nil {
		return err
	}
	p, perr := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2, Length: 32})
	if p == nil {
		return fmt.Errorf("ping returned no output: %w", perr)
	}
	tr, terr := ws.Traceroute(1, core.TrOptions{Dst: d.dst, Length: 32, RouterPort: routing.GeographicPort})
	if tr == nil {
		return fmt.Errorf("traceroute returned no output: %w", terr)
	}
	wall := time.Since(start)

	stats := tb.Med.Stats()
	simS := float64(tb.Eng.Now()) / float64(time.Second)
	wallS := wall.Seconds()
	nsPerSimS := 0.0
	if simS > 0 {
		nsPerSimS = float64(wall.Nanoseconds()) / simS
	}
	txPerWallS := 0.0
	if wallS > 0 {
		txPerWallS = float64(stats.Transmitted) / wallS
	}
	if opt.NoWallClock {
		// Wall-clock readings vary run to run; the determinism
		// regression compares rendered output byte for byte, so the
		// real-time columns collapse to placeholders.
		r.Table.AddRow(d.side*d.side, medWorkers, stats.Transmitted, stats.Delivered, simS, "-", "-", "-")
	} else {
		r.Table.AddRow(d.side*d.side, medWorkers, stats.Transmitted, stats.Delivered, simS,
			float64(wall.Milliseconds()), nsPerSimS, txPerWallS)
	}

	label := fmt.Sprintf("%d×%d", d.side, d.side)
	r.note("%s: ping 1→2: %d/%d replies (%s); traceroute →%d: %d hop reports (%s)",
		label, p.Received, p.Sent, p.Verdict, d.dst, len(tr.Reports), tr.Verdict)
	r.check(label+" grid built", tb.Med.Nodes() == d.side*d.side+1,
		"%d nodes attached (grid + workstation)", tb.Med.Nodes())
	if d.shard {
		cells, cellSize, ring := tb.Med.ShardInfo()
		r.check(label+" medium sharded", tb.Med.Sharded() && cells > 1,
			"%d cells of %.0f m (ring %d), %d assessment lanes", cells, cellSize, ring, medWorkers)
	}
	r.check(label+" neighbour ping answered", p.Received > 0,
		"%d/%d replies", p.Received, p.Sent)
	r.check(label+" traceroute progressed", len(tr.Reports) > 0,
		"%d hop reports toward node %d", len(tr.Reports), d.dst)
	r.check(label+" traffic flowed", stats.Transmitted > 0 && stats.Delivered > 0,
		"%d frames on the air, %d deliveries", stats.Transmitted, stats.Delivered)
	if opt.NoWallClock {
		r.check(label+" throughput measured", simS > 0 && wallS > 0,
			"%.1f sim seconds simulated (wall-clock readings suppressed)", simS)
	} else {
		r.check(label+" throughput measured", simS > 0 && wallS > 0,
			"%.1f sim seconds in %.0f ms wall (%.0f ns wall per sim second)",
			simS, float64(wall.Milliseconds()), nsPerSimS)
	}

	if rec != nil {
		rec.Stop()
		if err := writeTelemetry(opt, "scale", rec); err != nil {
			return fmt.Errorf("telemetry artifacts: %w", err)
		}
	}
	return nil
}

// Scale exercises the medium's large-deployment path at two sizes: the
// 400-node grid (an order of magnitude past the paper's 30-mote
// testbed) on the plain indexed medium, and a 10,000-node grid on the
// spatially sharded medium — the same management commands, with
// wall-clock throughput figures (how many virtual nanoseconds each
// real second buys) per row. The reachability index makes the 400-node
// row tractable; the cell partition (ring-bounded fan-outs, per-cell
// interference ledgers, concurrent assessment lanes) is what carries
// the 10k row. BenchmarkMediumDeliver in the repository root
// quantifies the per-delivery speedups.
func Scale(seed uint64, opt Options) (*Result, error) {
	base := scaleDeployment{side: 20, warmup: 10 * time.Second}
	big := scaleDeployment{side: 100, warmup: 6 * time.Second, shard: true}
	if opt.Short {
		base.side = 10
		base.warmup = 6 * time.Second
		// The 10k smoke keeps its node count — the whole point is the
		// scale — and trims the warm-up to two beacon rounds.
		big.warmup = 4 * time.Second
	}
	if opt.scaleBigSide > 0 {
		big.side = opt.scaleBigSide
	}
	base.dst = phys.NodeID(base.side*base.side/2 + base.side/2 + 1) // grid centre
	big.dst = phys.NodeID(3*big.side + 4)                           // (42 m, 42 m): a few hops in

	r := &Result{ID: "SCALE", Title: "medium scalability: commands on 400-node and 10k-node grids"}
	r.Table = trace.NewTable("nodes", "med_workers", "tx_frames", "deliveries", "sim_s", "wall_ms", "wall_ns_per_sim_s", "tx_per_wall_s")
	for _, d := range []scaleDeployment{base, big} {
		if err := runScaleDeployment(r, d, seed, opt); err != nil {
			return nil, err
		}
	}
	r.Trials = 2
	return r, nil
}
