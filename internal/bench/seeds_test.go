package bench

import "testing"

func TestSeedRobustness(t *testing.T) {
	seeds := []uint64{1, 7, 99, 1234}
	opt := Options{Short: testing.Short(), scaleBigSide: 24}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, exp := range All() {
			res, err := exp.Run(seed, opt)
			if err != nil {
				t.Errorf("seed %d %s: %v", seed, exp.ID, err)
				continue
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("seed %d %s check %q: %s", seed, exp.ID, c.Name, c.Detail)
				}
			}
		}
	}
}
