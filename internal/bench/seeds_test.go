package bench

import "testing"

func TestSeedRobustness(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99, 1234} {
		for _, exp := range All() {
			res, err := exp.Run(seed)
			if err != nil {
				t.Errorf("seed %d %s: %v", seed, exp.ID, err)
				continue
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("seed %d %s check %q: %s", seed, exp.ID, c.Name, c.Detail)
				}
			}
		}
	}
}
