package bench

import (
	"fmt"
	"math"
	"time"

	"liteview/internal/core"
	"liteview/internal/liteos"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/testbed"
	"liteview/internal/trace"
)

// ms converts a virtual duration to float milliseconds for table rows.
func ms(d sim.Time) float64 { return float64(d) / float64(time.Millisecond) }

// deployment bundles a warmed-up testbed, its LiteView controllers,
// and a workstation near node 1.
type deployment struct {
	tb   *testbed.Testbed
	ws   *core.Workstation
	ctls map[phys.NodeID]*core.Controller
}

// lineDeployment builds a line testbed with geographic forwarding and
// LiteView installed, warmed up, with a workstation near node 1.
func lineDeployment(n int, spacing float64, seed uint64, shadow, asym float64, cfg routing.Config) (*deployment, error) {
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = shadow
	opt.AsymSigma = asym
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		return nil, err
	}
	if err := tb.AttachGeographic(cfg); err != nil {
		return nil, err
	}
	ctls, err := tb.InstallLiteView()
	if err != nil {
		return nil, err
	}
	tb.WarmUp(20 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		return nil, err
	}
	return &deployment{tb: tb, ws: ws, ctls: ctls}, nil
}

// sentControl sums management frames sent by every node plus the
// workstation (what Figure 7 counts).
func sentControl(tb *testbed.Testbed, ws *core.Workstation) uint64 {
	var total uint64
	for _, n := range tb.Nodes {
		total += n.MAC().Stats().SentControl
	}
	// The workstation's own command/ack frames ride its MAC, reachable
	// through the endpoint stats; count its data+acks sent.
	st := ws.Endpoint().Stats()
	total += st.DataSent + st.AcksSent
	return total
}

// ResponseDelays regenerates E1: the paper's §V-A claim that both
// neighborhood management and single-hop ping have a response delay of
// 500 milliseconds (a full command window, intentionally longer than
// the network needs).
func ResponseDelays(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "E1", Title: "response delays of one-hop commands (paper: 500 ms)"}
	tbOpt := testbed.DefaultOptions(seed)
	tbOpt.ShadowSigma = 0
	tbOpt.AsymSigma = 0
	tb, err := testbed.Grid(5, 6, 8, tbOpt) // the paper's thirty-node testbed
	if err != nil {
		return nil, err
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		return nil, err
	}
	if _, err := tb.InstallLiteView(); err != nil {
		return nil, err
	}
	tb.WarmUp(15 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: 0, Y: -2})
	if err != nil {
		return nil, err
	}

	const trials = 5
	var nbrDelays, pingDelays []float64
	for i := 0; i < trials; i++ {
		out, err := ws.NeighborList(1, true)
		if err != nil {
			return nil, fmt.Errorf("neighbor list trial %d: %w", i, err)
		}
		nbrDelays = append(nbrDelays, ms(out.ResponseDelay))
		pout, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32})
		if err != nil {
			return nil, fmt.Errorf("ping trial %d: %w", i, err)
		}
		pingDelays = append(pingDelays, ms(pout.ResponseDelay))
	}
	nbr := trace.Summarize(nbrDelays)
	png := trace.Summarize(pingDelays)
	r.Table = trace.NewTable("command", "trials", "mean_ms", "min_ms", "max_ms")
	r.Table.AddRow("neighborhood list", nbr.N, nbr.Mean, nbr.Min, nbr.Max)
	r.Table.AddRow("ping (single-hop)", png.N, png.Mean, png.Min, png.Max)
	r.check("neighborhood ≈500ms", nbr.Mean >= 490 && nbr.Mean <= 620,
		"mean %.1f ms (window 500 ms)", nbr.Mean)
	r.check("ping ≈500ms", png.Mean >= 490 && png.Mean <= 620,
		"mean %.1f ms (window 500 ms)", png.Mean)
	r.note("the window is intentionally longer than needed so group responses can back off randomly")
	return r, nil
}

// Figure5 regenerates the traceroute response delay per hop on the
// eight-hop-diameter testbed: delays generally increase with the hop
// index, but routing-layer queueing plus channel-busy jitter can
// deliver some reports back-to-back.
func Figure5(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "F5", Title: "traceroute response delay vs hop (8-hop line)"}
	dep, err := lineDeployment(9, 22, seed, 1.0, 1.0, routing.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out, err := dep.ws.Traceroute(1, core.TrOptions{Dst: 9, Length: 32, RouterPort: routing.GeographicPort})
	if err != nil {
		return nil, err
	}
	r.Table = trace.NewTable("hop", "from", "hop_rtt_ms", "response_delay_ms")
	var series trace.Series
	backToBack := 0
	var prevDelay sim.Time
	for i, rep := range out.Reports {
		r.Table.AddRow(rep.Hop, fmt.Sprintf("192.168.0.%d", rep.From), float64(rep.RTT)/1000, ms(rep.Delay))
		series.Add(float64(rep.Hop), ms(rep.Delay))
		if i > 0 && rep.Delay-prevDelay < 3*time.Millisecond {
			backToBack++
		}
		prevDelay = rep.Delay
	}
	r.check("one report per hop", len(out.Reports) == 8, "%d reports for 8 hops", len(out.Reports))
	if len(out.Reports) > 0 {
		first, last := out.Reports[0], out.Reports[len(out.Reports)-1]
		r.check("delay grows along the path", last.Delay > first.Delay,
			"hop 1 at %.1f ms, hop %d at %.1f ms", ms(first.Delay), last.Hop, ms(last.Delay))
		r.check("destination reached", last.Final && !last.Lost,
			"final=%v lost=%v from=%d", last.Final, last.Lost, last.From)
	}
	slope, _ := trace.LinearFit(series.Points)
	r.note("fitted delay growth: %.2f ms/hop; %d report pair(s) arrived back-to-back (<3 ms apart)", slope, backToBack)
	return r, nil
}

// Figure6 regenerates the per-hop RSSI readings of the traceroute
// command at power levels 10 and 25, forward and backward. Higher
// power raises every reading by a near-constant amount, and forward
// and backward readings differ because links are asymmetric.
func Figure6(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "F6", Title: "traceroute RSSI per hop, PA 10 vs PA 25, forward vs backward"}
	cfg := routing.DefaultConfig()
	// PA-10 adjacent links sit near the default LQI gate while two-span
	// links must stay excluded: 70 splits them cleanly at 10 m spacing.
	cfg.MinLQI = 70
	tbOpt := testbed.DefaultOptions(seed)
	tbOpt.ShadowSigma = 1.0
	tbOpt.AsymSigma = 1.5
	tb, err := testbed.Line(9, 10, tbOpt)
	if err != nil {
		return nil, err
	}
	if err := tb.AttachGeographic(cfg); err != nil {
		return nil, err
	}
	if _, err := tb.InstallLiteView(); err != nil {
		return nil, err
	}
	// Discover the neighborhood at power level 10 so the routing
	// topology is the adjacent-hop chain both runs share, then freeze
	// the tables by stopping the beacon exchange.
	for _, n := range tb.Nodes {
		if err := n.Radio().SetPowerLevel(10); err != nil {
			return nil, err
		}
	}
	tb.WarmUp(25 * time.Second)
	for _, n := range tb.Nodes {
		n.Neighbors().Stop()
	}
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		return nil, err
	}

	runAt := func(level int) (map[int][2]int, error) {
		for _, n := range tb.Nodes {
			if err := n.Radio().SetPowerLevel(level); err != nil {
				return nil, err
			}
		}
		// Hop reports ride fire-and-forget routing: very occasionally
		// one is lost in a collision. The tool is interactive — a user
		// whose output is missing a hop just runs the command again —
		// so collect up to three runs, keeping the first reading seen
		// per hop.
		got := make(map[int][2]int)
		for attempt := 0; attempt < 3 && len(got) < 8 && (attempt == 0 || len(got) > 0); attempt++ {
			out, err := ws.Traceroute(1, core.TrOptions{Dst: 9, Length: 32, RouterPort: routing.GeographicPort})
			if err != nil {
				return nil, err
			}
			for _, rep := range out.Reports {
				if _, seen := got[rep.Hop]; !seen && !rep.Lost {
					got[rep.Hop] = [2]int{int(rep.RSSIFwd), int(rep.RSSIBwd)}
				}
			}
		}
		return got, nil
	}
	at10, err := runAt(10)
	if err != nil {
		return nil, fmt.Errorf("PA 10 run: %w", err)
	}
	at25, err := runAt(25)
	if err != nil {
		return nil, fmt.Errorf("PA 25 run: %w", err)
	}

	// Both runs share the frozen routing topology, so they walk the
	// same path; its length depends on the seed's radio map (the static
	// shadowing draw occasionally lets one two-span link clear the
	// gate, giving a 7-hop diameter instead of 8 — a real deployment
	// would see the same).
	pathLen := 0
	for hop := range at10 {
		if hop > pathLen {
			pathLen = hop
		}
	}
	for hop := range at25 {
		if hop > pathLen {
			pathLen = hop
		}
	}
	r.Table = trace.NewTable("hop", "fwd_PA10", "bwd_PA10", "fwd_PA25", "bwd_PA25")
	var sum10, sum25 float64
	n10, n25 := 0, 0
	asymmetric := false
	bothRuns := 0
	for hop := 1; hop <= pathLen; hop++ {
		v10, ok10 := at10[hop]
		v25, ok25 := at25[hop]
		row := []any{hop, "-", "-", "-", "-"}
		if ok10 {
			row[1], row[2] = v10[0], v10[1]
			sum10 += float64(v10[0]+v10[1]) / 2
			n10++
			if v10[0] != v10[1] {
				asymmetric = true
			}
		}
		if ok25 {
			row[3], row[4] = v25[0], v25[1]
			sum25 += float64(v25[0]+v25[1]) / 2
			n25++
		}
		if ok10 && ok25 {
			bothRuns++
		}
		r.Table.AddRow(row...)
	}
	r.check("multi-hop path walked", pathLen >= 7, "path diameter %d hops", pathLen)
	r.check("all hops measured at both levels", bothRuns == pathLen && pathLen > 0,
		"%d/%d hops have both readings", bothRuns, pathLen)
	if n10 > 0 && n25 > 0 {
		gain := sum25/float64(n25) - sum10/float64(n10)
		wantGain := radio.PowerDBm(25) - radio.PowerDBm(10)
		r.check("higher power raises RSSI by the PA delta", math.Abs(gain-wantGain) < 3,
			"mean gain %.1f register units, PA table predicts %.1f dB", gain, wantGain)
	}
	r.check("forward and backward readings differ", asymmetric, "at least one asymmetric hop observed")
	r.note("readings are CC2420 RSSI register values (dBm = reading − 45)")
	return r, nil
}

// Figure7 regenerates the traceroute control-message overhead as a
// function of path length: near-linear growth in the plotted range,
// under 50 packets at 8 hops; single-hop ping costs just two packets.
// Overhead counts in-network frames (probes, replies, report
// forwarding), the quantity the command itself injects — the user's
// local workstation↔shell exchange is not network overhead.
func Figure7(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "F7", Title: "traceroute control packets vs hops"}
	dep, err := lineDeployment(9, 20, seed, 0, 0, routing.DefaultConfig())
	if err != nil {
		return nil, err
	}
	tb := dep.tb
	// Count control *messages*: physical transmissions minus the MAC's
	// link-layer retransmissions (a retried frame is the same message).
	inNetwork := func() uint64 {
		var total uint64
		for _, n := range tb.Nodes {
			st := n.MAC().Stats()
			total += st.SentControl - st.FrameRetries
		}
		return total
	}
	r.Table = trace.NewTable("hops", "control_packets")
	var series trace.Series
	prev := uint64(0)
	for hops := 1; hops <= 8; hops++ {
		before := inNetwork()
		done := false
		err := dep.ctls[1].Traceroute().Start(
			core.TrOptions{Dst: phys.NodeID(hops + 1), Length: 32, RouterPort: routing.GeographicPort},
			nil, func() { done = true })
		if err != nil {
			return nil, fmt.Errorf("traceroute to %d hops: %w", hops, err)
		}
		tb.Run(20 * time.Second) // drain the session fully
		if !done {
			return nil, fmt.Errorf("traceroute to %d hops never finished", hops)
		}
		delta := inNetwork() - before
		r.Table.AddRow(hops, delta)
		series.Add(float64(hops), float64(delta))
		if hops > 1 && delta+5 < prev {
			r.check("growth is monotone-ish", false, "hops %d used %d < hops %d's %d", hops, delta, hops-1, prev)
		}
		prev = delta
	}
	last := series.Points[len(series.Points)-1].Y
	r.check("fewer than 50 packets at 8 hops", last < 50, "%d packets at 8 hops", int(last))
	r2 := trace.RSquared(series.Points)
	r.check("growth is almost linear", r2 > 0.9, "linear fit R² = %.3f", r2)

	// The paper's companion claim: single-hop ping costs ~2 packets
	// (probe + reply).
	before := inNetwork()
	done := false
	if err := dep.ctls[1].Ping().Start(core.PingOptions{Dst: 2, Rounds: 1, Length: 32},
		func([]core.PingResult) { done = true }); err != nil {
		return nil, err
	}
	tb.Run(2 * time.Second)
	delta := inNetwork() - before
	r.check("single-hop ping costs 2 packets", done && delta == 2,
		"probe+reply = %d packets", delta)
	return r, nil
}

// FootprintTable regenerates T1: the reported binary footprints and the
// zero-overhead-when-inactive property.
func FootprintTable(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "T1", Title: "LiteView command footprints on a 4 KB-RAM / 128 KB-flash mote"}
	eng := sim.NewEngine(seed)
	med := medium.New(eng, phys.DefaultModel(seed))
	node, err := liteos.NewNode(eng, med, liteos.Config{ID: 1, Name: "192.168.0.1", Dir: "/sn01"})
	if err != nil {
		return nil, err
	}
	ramBase := node.RAMUsed()
	flashBase := node.FlashUsed()
	if _, err := core.NewController(node, nil); err != nil {
		return nil, err
	}
	r.Table = trace.NewTable("binary", "flash_bytes", "ram_bytes_running")
	r.Table.AddRow(core.PingBinary.Name, core.PingBinary.Flash, core.PingBinary.RAM)
	r.Table.AddRow(core.TracerouteBinary.Name, core.TracerouteBinary.Flash, core.TracerouteBinary.RAM)
	r.Table.AddRow(core.ControllerBinary.Name, core.ControllerBinary.Flash, core.ControllerBinary.RAM)

	r.check("ping footprint matches the paper", core.PingBinary.Flash == 2148 && core.PingBinary.RAM == 278,
		"%d B flash / %d B RAM", core.PingBinary.Flash, core.PingBinary.RAM)
	r.check("traceroute footprint matches the paper", core.TracerouteBinary.Flash == 2820 && core.TracerouteBinary.RAM == 272,
		"%d B flash / %d B RAM", core.TracerouteBinary.Flash, core.TracerouteBinary.RAM)
	wantFlash := flashBase + core.PingBinary.Flash + core.TracerouteBinary.Flash + core.ControllerBinary.Flash
	r.check("flash accounting consistent", node.FlashUsed() == wantFlash,
		"node flash %d, expected %d", node.FlashUsed(), wantFlash)
	// Only the controller process runs; ping/traceroute cost no RAM
	// until a command starts them.
	wantRAM := ramBase + core.ControllerBinary.RAM
	r.check("inactive commands cost zero RAM", node.RAMUsed() == wantRAM,
		"node RAM %d, expected %d (controller only)", node.RAMUsed(), wantRAM)
	r.note("everything fits: %d B flash used of %d, %d B RAM used of %d",
		node.FlashUsed(), liteos.FlashBytes, node.RAMUsed(), liteos.RAMBytes)
	return r, nil
}

// PingSample regenerates T2: the paper's sample single-hop ping output
// shape (RTT ≈ 4.7 ms for a 32-byte probe, LQI ≈ 108/106, near-zero
// RSSI registers, zero queues, power 31, channel 17).
func PingSample(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "T2", Title: "single-hop ping sample between nodes 5 m apart"}
	dep, err := lineDeployment(2, 5, seed, 0, 0, routing.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out, err := dep.ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32})
	if err != nil {
		return nil, err
	}
	if len(out.Results) == 0 {
		return nil, fmt.Errorf("no ping result")
	}
	res := out.Results[0]
	rtt := float64(res.RTT) / 1000
	r.Table = trace.NewTable("metric", "value")
	r.Table.AddRow("RTT_ms", rtt)
	r.Table.AddRow("LQI fwd/bwd", fmt.Sprintf("%d/%d", res.LQIFwd, res.LQIBwd))
	r.Table.AddRow("RSSI fwd/bwd", fmt.Sprintf("%d/%d", res.RSSIFwd, res.RSSIBwd))
	r.Table.AddRow("Queue fwd/bwd", fmt.Sprintf("%d/%d", res.QFwd, res.QBwd))
	r.Table.AddRow("Power", res.Power)
	r.Table.AddRow("Channel", res.Channel)
	r.Table.AddRow("Packets/Received/Lost", fmt.Sprintf("%d/%d/%d", out.Sent, out.Received, out.Lost))
	r.check("round delivered", out.Received == 1 && out.Lost == 0, "received=%d lost=%d", out.Received, out.Lost)
	r.check("RTT in the low milliseconds", rtt >= 1 && rtt <= 20, "%.2f ms (paper: 4.7 ms)", rtt)
	r.check("LQI near the top of the range", res.LQIFwd >= 100 && res.LQIBwd >= 100,
		"%d/%d (paper: 108/106)", res.LQIFwd, res.LQIBwd)
	r.check("default power and channel", res.Power == 31 && res.Channel == 17,
		"power=%d channel=%d (paper: 31, 17)", res.Power, res.Channel)
	return r, nil
}

// PaddingCapacity regenerates T3: the padding arithmetic — a 64-byte
// payload ceiling, two bytes per hop, so a 16-byte probe can record at
// most 24 hops.
func PaddingCapacity(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "T3", Title: "link-quality padding capacity vs probe size"}
	_ = seed
	r.Table = trace.NewTable("probe_bytes", "max_pad_hops")
	for _, n := range []int{0, 8, 16, 32, 48, 64} {
		r.Table.AddRow(n, stack.MaxPadHops(n))
	}
	r.check("paper's example: 16-byte probe pads 24 hops", stack.MaxPadHops(16) == 24,
		"MaxPadHops(16) = %d", stack.MaxPadHops(16))
	r.check("full payload leaves no room", stack.MaxPadHops(64) == 0,
		"MaxPadHops(64) = %d", stack.MaxPadHops(64))
	// Dynamic validation: actually append until full.
	p := &stack.Packet{Flags: stack.FlagPad, Data: make([]byte, 16)}
	appended := 0
	for p.AppendPad(stack.LinkQuality{LQI: 100, RSSI: -10}) == nil {
		appended++
	}
	r.check("runtime padding agrees with the arithmetic", appended == 24, "appended %d records", appended)
	return r, nil
}
