package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// Options carries run-wide configuration into every experiment. It
// replaces the former SetTraceDir/SetShort package globals: with the
// parallel runner, several experiments execute concurrently, and any
// shared mutable configuration would be a data race. An Options value
// is immutable once a run starts; experiments only read it.
type Options struct {
	// TraceDir, when non-empty, makes experiments that support it
	// record cross-layer telemetry and write per-scenario artifacts
	// (<dir>/<stem>.jsonl and <dir>/<stem>.trace.json). Recording is
	// non-perturbing, so results are identical with or without it.
	TraceDir string
	// Short selects the reduced-size experiment variants (fewer nodes,
	// shorter warmups) used as CI smoke tests.
	Short bool
	// NoWallClock suppresses real-time readings (the scale experiment's
	// wall-clock throughput columns), leaving only virtual-time output.
	// The parallel determinism regression sets it so a -parallel N run
	// renders byte-identical to -parallel 1.
	NoWallClock bool
	// Workers bounds how many independent simulations run concurrently:
	// 1 is the legacy sequential baseline, 0 or below means
	// runtime.GOMAXPROCS(0). Determinism does not depend on Workers —
	// every engine is private to one simulation and results are
	// aggregated in experiment/trial order.
	Workers int
	// MediumWorkers, when above one, runs the scale experiments on a
	// spatially sharded radio medium with that many concurrent
	// assessment lanes per simulation (medium.Sharding). Sharded-medium
	// output is byte-identical at every lane count, so this is a pure
	// throughput knob; it is recorded in the JSON report because the
	// wall-clock rows depend on it.
	MediumWorkers int
	// ProfileDir, when non-empty, writes per-experiment CPU and heap
	// profiles (<dir>/<id>.cpu.pprof, <dir>/<id>.heap.pprof). CPU
	// profiling is process-global, so a profiled run is forced to
	// Workers=1 — one experiment on the CPU at a time is also what makes
	// the profile attributable.
	ProfileDir string
	// gate is the run-wide worker pool, shared by the experiment-level
	// fan-out and the per-trial fan-outs inside experiments so total
	// concurrency stays bounded by Workers even when they nest.
	gate chan struct{}
	// scaleBigSide overrides the sharded scale deployment's grid side.
	// Test hook only: the bench unit tests shrink the 10,000-node row so
	// the full suite stays fast; lvbench itself always runs the real
	// thing (the 10k smoke is the point of -short there).
	scaleBigSide int
}

// tracing reports whether artifact recording is enabled.
func (o Options) tracing() bool { return o.TraceDir != "" }

// withGate resolves the Workers default and allocates the shared worker
// gate. The gate holds Workers-1 slots: the caller's own goroutine is
// the final worker (forEach falls back to running jobs inline when the
// gate is full), so total concurrency equals Workers.
func (o Options) withGate() Options {
	if o.ProfileDir != "" {
		o.Workers = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > 1 && o.gate == nil {
		o.gate = make(chan struct{}, o.Workers-1)
	}
	return o
}

// forEach runs fn for every index in [0, n), concurrently when the
// options carry a worker gate, and returns the lowest-indexed error.
// Callers keep determinism by writing results into slot i and reducing
// in index order afterwards — completion order never matters. When the
// gate is saturated (or Workers is 1) jobs run inline on the calling
// goroutine, which both bounds concurrency and rules out pool
// deadlocks for nested forEach calls.
func (o Options) forEach(n int, fn func(i int) error) error {
	if n == 1 || o.Workers <= 1 || o.gate == nil {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case o.gate <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-o.gate }()
				errs[i] = fn(i)
			}(i)
		default:
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Outcome is one experiment's result as produced by RunAll, including
// the real time the run cost (virtual-time results live in Res).
type Outcome struct {
	Exp  Experiment
	Res  *Result
	Err  error
	Wall time.Duration
}

// Passed reports whether the experiment ran and every shape check held.
func (o Outcome) Passed() bool { return o.Err == nil && o.Res != nil && o.Res.Passed() }

// RunAll executes the given experiments over a bounded worker pool of
// opt.Workers goroutines and returns their outcomes in input order.
//
// The determinism contract (DESIGN.md §10): every simulation engine,
// radio medium, telemetry bus, and RNG stream is private to one
// experiment run, seeds are derived only from (seed, experiment,
// trial), and aggregation is by index — so the outcomes, the rendered
// tables, and any telemetry artifacts are byte-identical for every
// value of opt.Workers. Only wall-clock readings differ; pass
// NoWallClock to suppress those.
func RunAll(exps []Experiment, seed uint64, opt Options) []Outcome {
	opt = opt.withGate()
	outs := make([]Outcome, len(exps))
	// Experiments return their errors in outs; forEach cannot fail here.
	_ = opt.forEach(len(exps), func(i int) error {
		start := time.Now()
		res, err := runProfiled(exps[i], seed, opt)
		outs[i] = Outcome{Exp: exps[i], Res: res, Err: err, Wall: time.Since(start)}
		return nil
	})
	return outs
}

// runProfiled runs one experiment, bracketing it with CPU profiling and
// a post-run heap snapshot when opt.ProfileDir is set. Profiling never
// masks the experiment's own result: a profile I/O failure surfaces
// only if the experiment itself succeeded.
func runProfiled(exp Experiment, seed uint64, opt Options) (*Result, error) {
	if opt.ProfileDir == "" {
		return exp.Run(seed, opt)
	}
	if err := os.MkdirAll(opt.ProfileDir, 0o755); err != nil {
		return nil, fmt.Errorf("profile dir: %w", err)
	}
	cpu, err := os.Create(filepath.Join(opt.ProfileDir, exp.ID+".cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	res, runErr := exp.Run(seed, opt)
	pprof.StopCPUProfile()
	profErr := cpu.Close()
	heap, err := os.Create(filepath.Join(opt.ProfileDir, exp.ID+".heap.pprof"))
	if err == nil {
		runtime.GC() // fresh statistics: profile live objects, not garbage
		if werr := pprof.Lookup("heap").WriteTo(heap, 0); werr != nil && profErr == nil {
			profErr = werr
		}
		if cerr := heap.Close(); cerr != nil && profErr == nil {
			profErr = cerr
		}
	} else if profErr == nil {
		profErr = err
	}
	if runErr == nil && profErr != nil {
		return res, fmt.Errorf("writing profiles: %w", profErr)
	}
	return res, runErr
}
