package bench

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"liteview/internal/core"
	"liteview/internal/fault"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/telemetry"
	"liteview/internal/testbed"
	"liteview/internal/trace"
)

// recAppPort carries the recovery experiment's application traffic.
const recAppPort byte = 100

// recTrafficPeriod is the offered-load interval: one packet per period
// from the source toward the sink.
const recTrafficPeriod = 100 * time.Millisecond

// diamondDeployment builds the four-node diamond the recovery
// experiment routes through:
//
//	      2 (22,-8)
//	     / \
//	1 (0,0) 4 (44,0)
//	     \ /
//	      3 (22,8)
//
// Nodes 2 and 3 are equidistant relays; greedy geographic forwarding
// breaks the tie toward the lower ID, so the primary path is 1→2→4 and
// node 3 is the guaranteed alternate the self-healing layer can fall
// back to.
func diamondDeployment(seed uint64) (*deployment, error) {
	positions := []phys.Position{
		{X: 0, Y: 0},
		{X: 22, Y: -8},
		{X: 22, Y: 8},
		{X: 44, Y: 0},
	}
	// Zero the shadowing so the relay choice is pure geometry: with
	// random per-link shadowing the "primary" relay would vary by seed
	// and the fault would sometimes hit the idle one.
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Custom(positions, opt)
	if err != nil {
		return nil, err
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		return nil, err
	}
	ctls, err := tb.InstallLiteView()
	if err != nil {
		return nil, err
	}
	tb.WarmUp(20 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		return nil, err
	}
	return &deployment{tb: tb, ws: ws, ctls: ctls}, nil
}

// recOutcome summarizes one reroute measurement. It is a flat value
// type so the determinism check can compare two runs with ==.
type recOutcome struct {
	deliveredBefore int
	deliveredAfter  int
	// rerouteMs is virtual time from the fault to the first delivery
	// over the alternate path (-1 when traffic never recovered).
	rerouteMs     float64
	linkRepairs   uint64
	altForwards   uint64
	suspectEvents int
	repairEvents  int
}

// measureReroute deploys the diamond, offers periodic traffic 1→4,
// injects f two seconds in, and measures how long delivery takes to
// resume through the alternate relay. The full telemetry stream is
// returned serialized for byte-level determinism comparison. stem names
// the telemetry artifact (recover-<stem>); it must be unique per call
// so concurrent scenarios never write the same file.
func measureReroute(seed uint64, opt Options, stem string, f fault.Fault) (recOutcome, []byte, error) {
	dep, err := diamondDeployment(seed)
	if err != nil {
		return recOutcome{}, nil, err
	}
	rec := dep.tb.Telemetry()
	rec.Start()
	var deliveries []sim.Time
	err = dep.tb.Nodes[3].Stack().Subscribe(recAppPort, func(*stack.Packet, phys.NodeID, medium.RxInfo) {
		deliveries = append(deliveries, dep.tb.Eng.Now())
	})
	if err != nil {
		return recOutcome{}, nil, err
	}
	r1, ok := dep.tb.Router(routing.GeographicPort, 1)
	if !ok {
		return recOutcome{}, nil, errors.New("bench: no router at node 1")
	}
	stopTraffic := false
	var tick func()
	tick = func() {
		if stopTraffic {
			return
		}
		_ = r1.SendTo(4, recAppPort, []byte("self-heal"), false, false)
		dep.tb.Eng.After(recTrafficPeriod, tick)
	}
	dep.tb.Eng.After(recTrafficPeriod, tick)

	dep.tb.Run(2 * time.Second)
	out := recOutcome{deliveredBefore: len(deliveries)}
	faultAt := dep.tb.Eng.Now()
	f.At = faultAt
	if _, err := dep.tb.FaultInjector().Schedule(f); err != nil {
		return recOutcome{}, nil, err
	}
	dep.tb.Run(5 * time.Second)
	stopTraffic = true

	out.rerouteMs = -1
	for _, at := range deliveries[out.deliveredBefore:] {
		if out.rerouteMs < 0 {
			out.rerouteMs = ms(at - faultAt)
		}
		out.deliveredAfter++
	}
	out.linkRepairs = r1.Stats().LinkRepairs
	if r3, ok := dep.tb.Router(routing.GeographicPort, 3); ok {
		out.altForwards = r3.Stats().Forwarded
	}
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case "link-suspect":
			out.suspectEvents++
		case "route-repair":
			out.repairEvents++
		}
	}
	rec.Stop()
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, rec.Events(), telemetry.Filter{}); err != nil {
		return recOutcome{}, nil, err
	}
	if opt.tracing() {
		if err := writeTelemetry(opt, "recover-"+stem, rec); err != nil {
			return recOutcome{}, nil, err
		}
	}
	return out, buf.Bytes(), nil
}

// Recovery runs the self-healing experiment: data-driven link
// estimation plus route repair must reroute traffic around a crashed
// relay (and a blacked-out link) within a bounded number of virtual
// milliseconds, a faulted traceroute must return the per-hop reports it
// did collect instead of failing whole, and the workstation's circuit
// breaker must fail fast on a node that has stopped answering.
func Recovery(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "RECOVER", Title: "self-healing: reroute after relay failure (4-node diamond)"}
	r.Table = trace.NewTable("scenario", "delivered_before", "delivered_after", "reroute_ms", "repairs", "alt_forwards")

	// The three reroute measurements (crash, blackout, and the crash
	// determinism replay) are independent deployments; fan them out and
	// tabulate in order.
	reroutes := []struct {
		stem string
		f    fault.Fault
	}{
		{"crash", fault.Fault{Kind: fault.NodeCrash, Node: 2}},
		{"blackout", fault.Fault{Kind: fault.LinkBlackout, A: 1, B: 2}},
		{"crash-replay", fault.Fault{Kind: fault.NodeCrash, Node: 2}},
	}
	recOuts := make([]recOutcome, len(reroutes))
	recTraces := make([][]byte, len(reroutes))
	if err := opt.forEach(len(reroutes), func(i int) error {
		out, tr, err := measureReroute(seed, opt, reroutes[i].stem, reroutes[i].f)
		if err != nil {
			return fmt.Errorf("%s: %w", reroutes[i].stem, err)
		}
		recOuts[i], recTraces[i] = out, tr
		return nil
	}); err != nil {
		return nil, err
	}
	r.Trials = len(reroutes) + 1 // plus the degradation deployment below

	// Scenario 1: the primary relay crashes mid-stream.
	crash, crashTrace := recOuts[0], recTraces[0]
	r.Table.AddRow("crash relay 2", crash.deliveredBefore, crash.deliveredAfter,
		fmt.Sprintf("%.1f", crash.rerouteMs), crash.linkRepairs, crash.altForwards)
	r.check("crash: traffic flowed before the fault", crash.deliveredBefore > 0,
		"%d deliveries in 2 s", crash.deliveredBefore)
	r.check("crash: traffic rerouted", crash.rerouteMs >= 0 && crash.deliveredAfter > 0,
		"%d deliveries after the crash", crash.deliveredAfter)
	r.check("crash: reroute within 2 s of virtual time",
		crash.rerouteMs >= 0 && crash.rerouteMs <= 2000, "time-to-reroute %.1f ms", crash.rerouteMs)
	r.check("crash: repair was data-driven", crash.linkRepairs >= 1 && crash.suspectEvents >= 1,
		"%d link repair(s), %d link-suspect event(s), %d route-repair event(s)",
		crash.linkRepairs, crash.suspectEvents, crash.repairEvents)
	r.check("crash: alternate relay carried traffic", crash.altForwards > 0,
		"node 3 forwarded %d packet(s)", crash.altForwards)

	// Scenario 2: the primary link blacks out but the relay stays up —
	// same repair loop, different fault class.
	black := recOuts[1]
	r.Table.AddRow("blackout 1-2", black.deliveredBefore, black.deliveredAfter,
		fmt.Sprintf("%.1f", black.rerouteMs), black.linkRepairs, black.altForwards)
	r.check("blackout: traffic rerouted", black.rerouteMs >= 0 && black.deliveredAfter > 0,
		"%d deliveries after the blackout, first %.1f ms in", black.deliveredAfter, black.rerouteMs)

	// Determinism: the crash scenario replayed on the same seed must
	// reproduce the outcome and the telemetry stream byte for byte.
	crash2, crashTrace2 := recOuts[2], recTraces[2]
	r.check("determinism: same seed, same outcome", crash == crash2,
		"reroute %.1f/%.1f ms, %d/%d deliveries",
		crash.rerouteMs, crash2.rerouteMs, crash.deliveredAfter, crash2.deliveredAfter)
	r.check("determinism: byte-identical telemetry trace", bytes.Equal(crashTrace, crashTrace2),
		"%d vs %d bytes of JSONL", len(crashTrace), len(crashTrace2))

	// Scenario 3: graceful degradation at the workstation. A traceroute
	// issued right after the crash returns the per-hop reports it could
	// collect — naming the failing hop — rather than failing whole; once
	// the estimator has condemned the dead link, the same command
	// succeeds over the alternate relay. Repeated command failures to
	// the dead node then open its circuit breaker: the fourth attempt is
	// rejected instantly instead of burning another response window.
	dep, err := diamondDeployment(seed)
	if err != nil {
		return nil, fmt.Errorf("degradation: %w", err)
	}
	if _, err := dep.tb.FaultInjector().Schedule(fault.Fault{
		At: dep.tb.Eng.Now(), Kind: fault.NodeCrash, Node: 2}); err != nil {
		return nil, err
	}
	trOpts := core.TrOptions{Dst: 4, Length: 32, RouterPort: routing.GeographicPort}
	partial, _ := dep.ws.Traceroute(1, trOpts)
	r.check("degradation: faulted traceroute returns partial hop reports",
		partial != nil && len(partial.Reports) > 0 && partial.FailedHop >= 1,
		"%d report(s), failed hop %d, verdict %q",
		len(partial.Reports), partial.FailedHop, partial.Verdict)
	// Drive a little traffic so the estimator condemns the dead link.
	if r1, ok := dep.tb.Router(routing.GeographicPort, 1); ok {
		for i := 0; i < 6; i++ {
			_ = r1.SendTo(4, recAppPort, []byte("probe"), false, false)
			dep.tb.Run(200 * time.Millisecond)
		}
	}
	healed, healedErr := dep.ws.Traceroute(1, trOpts)
	r.check("degradation: post-repair traceroute reaches the destination",
		healedErr == nil && healed != nil && healed.FailedHop == 0 &&
			len(healed.Reports) > 0 && healed.Reports[len(healed.Reports)-1].Final,
		"verdict %q", healed.Verdict)

	var lastErr error
	for i := 0; i < core.DefaultBreakerThreshold; i++ {
		_, lastErr = dep.ws.Ping(2, core.PingOptions{Dst: 4, Rounds: 1, Length: 32})
	}
	r.check("breaker: failures are typed ack timeouts",
		lastErr != nil && errors.Is(lastErr, core.ErrAckTimeout) && errors.Is(lastErr, core.ErrXferFailed),
		"last error: %v", lastErr)
	before := dep.tb.Eng.Now()
	_, openErr := dep.ws.Ping(2, core.PingOptions{Dst: 4, Rounds: 1, Length: 32})
	r.check("breaker: opens after repeated failures and fails fast",
		errors.Is(openErr, core.ErrBreakerOpen) && dep.tb.Eng.Now() == before,
		"error %v, %v of virtual time spent", openErr, time.Duration(dep.tb.Eng.Now()-before))
	r.check("breaker: state visible to the user",
		dep.ws.BreakerFor(2).State == core.BreakerOpen, "state %v", dep.ws.BreakerFor(2).State)

	r.note("time-to-reroute counts from fault injection to the first delivery over the alternate relay")
	r.note("the same estimator signal drives routing repair, diagnosis verdicts, and the shell's health view")
	return r, nil
}
