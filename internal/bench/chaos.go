package bench

import (
	"fmt"
	"time"

	"liteview/internal/core"
	"liteview/internal/fault"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/telemetry"
	"liteview/internal/trace"
)

// Chaos runs the fault-injection experiment: the same management
// commands the paper evaluates, but executed while the deployment is
// failing underneath them. Each scenario deploys a fresh six-node line,
// scripts one fault class, runs a ping and a traceroute through it, and
// records whether the command terminated inside its window and what
// verdict it returned. The shape checks assert the robustness story:
// every command terminates, failures produce explicit verdicts instead
// of silence, a rebooted node answers again, and the whole experiment
// is deterministic in the seed.
func Chaos(seed uint64) (*Result, error) {
	r := &Result{ID: "CHAOS", Title: "command behaviour under injected faults (6-node line)"}
	r.Table = trace.NewTable("scenario", "command", "ok", "delay_ms", "verdict")

	type outcome struct {
		ok      bool
		delayMs float64
		verdict string
	}
	// run deploys, scripts the scenario's faults, executes ping 1→2 and
	// traceroute 1→6, and returns both outcomes. With -trace set, the
	// whole scenario is recorded and exported under chaos-<slug>.
	run := func(slug string, script func(*deployment, *fault.Injector) error) (pingOut, trOut outcome, err error) {
		dep, err := lineDeployment(6, 22, seed, 0, 0, routing.DefaultConfig())
		if err != nil {
			return outcome{}, outcome{}, err
		}
		var rec *telemetry.Recorder
		if tracing() {
			rec = dep.tb.Telemetry()
			rec.Start()
		}
		inj := dep.tb.FaultInjector()
		if script != nil {
			if err := script(dep, inj); err != nil {
				return outcome{}, outcome{}, err
			}
		}
		p, perr := dep.ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2, Length: 32})
		if p == nil {
			return outcome{}, outcome{}, fmt.Errorf("ping returned no output: %w", perr)
		}
		pingOut = outcome{ok: perr == nil && p.Lost == 0, delayMs: ms(p.ResponseDelay), verdict: p.Verdict}
		t, terr := dep.ws.Traceroute(1, core.TrOptions{Dst: 6, Length: 32, RouterPort: routing.GeographicPort})
		if t == nil {
			return outcome{}, outcome{}, fmt.Errorf("traceroute returned no output: %w", terr)
		}
		trOut = outcome{ok: terr == nil && t.FailedHop == 0 && len(t.Reports) > 0 && t.Reports[len(t.Reports)-1].Final,
			delayMs: ms(t.ResponseDelay), verdict: t.Verdict}
		if rec != nil {
			rec.Stop()
			if err := writeTelemetry("chaos-"+slug, rec); err != nil {
				return outcome{}, outcome{}, fmt.Errorf("telemetry artifacts: %w", err)
			}
		}
		return pingOut, trOut, nil
	}
	record := func(scenario string, p, t outcome) {
		r.Table.AddRow(scenario, "ping 1→2", p.ok, p.delayMs, p.verdict)
		r.Table.AddRow(scenario, "traceroute 1→6", t.ok, t.delayMs, t.verdict)
	}

	// Baseline: no faults; both commands succeed.
	pBase, tBase, err := run("baseline", nil)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	record("baseline", pBase, tBase)
	r.check("baseline ping ok", pBase.ok, "verdict %q", pBase.verdict)
	r.check("baseline traceroute ok", tBase.ok, "verdict %q", tBase.verdict)

	// Crash: relay node 3 power-fails; the traceroute must name the hop.
	pCrash, tCrash, err := run("crash-relay-3", func(dep *deployment, inj *fault.Injector) error {
		_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.NodeCrash, Node: 3})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("crash: %w", err)
	}
	record("crash relay 3", pCrash, tCrash)
	r.check("crash: ping past the crash still ok", pCrash.ok, "verdict %q", pCrash.verdict)
	r.check("crash: traceroute reports a broken path", !tCrash.ok && tCrash.verdict != "",
		"verdict %q", tCrash.verdict)

	// Blackout: the 1↔2 link drops every frame; ping loses all rounds
	// with an explicit verdict rather than hanging.
	pBlack, tBlack, err := run("blackout-1-2", func(dep *deployment, inj *fault.Injector) error {
		_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.LinkBlackout, A: 1, B: 2})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("blackout: %w", err)
	}
	record("blackout 1-2", pBlack, tBlack)
	r.check("blackout: ping fails explicitly", !pBlack.ok && pBlack.verdict != "",
		"verdict %q", pBlack.verdict)

	// Corrupt burst: node 2 corrupts 80% of received frames; commands
	// still terminate, loss is visible.
	pCor, tCor, err := run("corrupt-burst-2", func(dep *deployment, inj *fault.Injector) error {
		_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.CorruptBurst, Node: 2})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("corrupt: %w", err)
	}
	record("corrupt-burst 2", pCor, tCor)
	r.check("corrupt: ping terminates with a verdict", pCor.verdict != "", "verdict %q", pCor.verdict)

	// Partition: nodes 4..6 are cut off; the traceroute breaks at the
	// boundary.
	pPart, tPart, err := run("partition-4-5-6", func(dep *deployment, inj *fault.Injector) error {
		_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.Partition,
			Group: []phys.NodeID{4, 5, 6}})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	record("partition {4,5,6}", pPart, tPart)
	r.check("partition: ping inside the main segment ok", pPart.ok, "verdict %q", pPart.verdict)
	r.check("partition: traceroute reports a broken path", !tPart.ok && tPart.verdict != "",
		"verdict %q", tPart.verdict)

	// Jam: every channel is jammed — even command delivery fails, with
	// an explicit verdict.
	pJam, tJam, err := run("jam", func(dep *deployment, inj *fault.Injector) error {
		_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.Jam})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("jam: %w", err)
	}
	record("jam all channels", pJam, tJam)
	r.check("jam: ping fails explicitly", !pJam.ok && pJam.verdict != "", "verdict %q", pJam.verdict)
	r.check("jam: traceroute fails explicitly", !tJam.ok && tJam.verdict != "", "verdict %q", tJam.verdict)

	// Recovery: node 2 crashes for two seconds, reboots, re-registers,
	// and answers commands again.
	pRec, tRec, err := run("crash-2-reboot", func(dep *deployment, inj *fault.Injector) error {
		if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.NodeCrash, Node: 2,
			Duration: 2 * time.Second}); err != nil {
			return err
		}
		dep.tb.Run(4 * time.Second) // crash window plus re-registration time
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	record("crash 2 + reboot", pRec, tRec)
	r.check("recovery: rebooted node answers ping", pRec.ok, "verdict %q", pRec.verdict)
	r.check("recovery: traceroute crosses the rebooted node", tRec.ok, "verdict %q", tRec.verdict)

	// Determinism: the crash scenario replayed with the same seed must
	// reproduce the exact delays and verdicts.
	pCrash2, tCrash2, err := run("crash-replay", func(dep *deployment, inj *fault.Injector) error {
		_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.NodeCrash, Node: 3})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("determinism: %w", err)
	}
	r.check("determinism: same seed, same fault, same outcome",
		pCrash == pCrash2 && tCrash == tCrash2,
		"crash replay: ping %.3f/%.3f ms, traceroute %.3f/%.3f ms",
		pCrash.delayMs, pCrash2.delayMs, tCrash.delayMs, tCrash2.delayMs)

	r.note("every command above terminated inside its response window; failures are explicit verdicts, not hangs")
	return r, nil
}
