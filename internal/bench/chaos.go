package bench

import (
	"fmt"
	"time"

	"liteview/internal/core"
	"liteview/internal/fault"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/telemetry"
	"liteview/internal/trace"
)

// Chaos runs the fault-injection experiment: the same management
// commands the paper evaluates, but executed while the deployment is
// failing underneath them. Each scenario deploys a fresh six-node line,
// scripts one fault class, runs a ping and a traceroute through it, and
// records whether the command terminated inside its window and what
// verdict it returned. The shape checks assert the robustness story:
// every command terminates, failures produce explicit verdicts instead
// of silence, a rebooted node answers again, and the whole experiment
// is deterministic in the seed.
func Chaos(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "CHAOS", Title: "command behaviour under injected faults (6-node line)"}
	r.Table = trace.NewTable("scenario", "command", "ok", "delay_ms", "verdict")

	type outcome struct {
		ok      bool
		delayMs float64
		verdict string
	}
	// run deploys, scripts the scenario's faults, executes ping 1→2 and
	// traceroute 1→6, and returns both outcomes. With -trace set, the
	// whole scenario is recorded and exported under chaos-<slug>.
	run := func(slug string, script func(*deployment, *fault.Injector) error) (pingOut, trOut outcome, err error) {
		dep, err := lineDeployment(6, 22, seed, 0, 0, routing.DefaultConfig())
		if err != nil {
			return outcome{}, outcome{}, err
		}
		var rec *telemetry.Recorder
		if opt.tracing() {
			rec = dep.tb.Telemetry()
			rec.Start()
		}
		inj := dep.tb.FaultInjector()
		if script != nil {
			if err := script(dep, inj); err != nil {
				return outcome{}, outcome{}, err
			}
		}
		p, perr := dep.ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2, Length: 32})
		if p == nil {
			return outcome{}, outcome{}, fmt.Errorf("ping returned no output: %w", perr)
		}
		pingOut = outcome{ok: perr == nil && p.Lost == 0, delayMs: ms(p.ResponseDelay), verdict: p.Verdict}
		t, terr := dep.ws.Traceroute(1, core.TrOptions{Dst: 6, Length: 32, RouterPort: routing.GeographicPort})
		if t == nil {
			return outcome{}, outcome{}, fmt.Errorf("traceroute returned no output: %w", terr)
		}
		trOut = outcome{ok: terr == nil && t.FailedHop == 0 && len(t.Reports) > 0 && t.Reports[len(t.Reports)-1].Final,
			delayMs: ms(t.ResponseDelay), verdict: t.Verdict}
		if rec != nil {
			rec.Stop()
			if err := writeTelemetry(opt, "chaos-"+slug, rec); err != nil {
				return outcome{}, outcome{}, fmt.Errorf("telemetry artifacts: %w", err)
			}
		}
		return pingOut, trOut, nil
	}

	// Every scenario deploys its own line testbed, so the whole set
	// fans out over the worker pool; rows and checks are recorded in
	// declaration order below, keeping output identical to a
	// sequential run.
	crashScript := func(dep *deployment, inj *fault.Injector) error {
		_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.NodeCrash, Node: 3})
		return err
	}
	scenarios := []struct {
		label  string
		slug   string
		script func(*deployment, *fault.Injector) error
	}{
		// Baseline: no faults; both commands succeed.
		{"baseline", "baseline", nil},
		// Crash: relay node 3 power-fails; the traceroute must name
		// the hop.
		{"crash relay 3", "crash-relay-3", crashScript},
		// Blackout: the 1↔2 link drops every frame; ping loses all
		// rounds with an explicit verdict rather than hanging.
		{"blackout 1-2", "blackout-1-2", func(dep *deployment, inj *fault.Injector) error {
			_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.LinkBlackout, A: 1, B: 2})
			return err
		}},
		// Corrupt burst: node 2 corrupts 80% of received frames;
		// commands still terminate, loss is visible.
		{"corrupt-burst 2", "corrupt-burst-2", func(dep *deployment, inj *fault.Injector) error {
			_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.CorruptBurst, Node: 2})
			return err
		}},
		// Partition: nodes 4..6 are cut off; the traceroute breaks at
		// the boundary.
		{"partition {4,5,6}", "partition-4-5-6", func(dep *deployment, inj *fault.Injector) error {
			_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.Partition,
				Group: []phys.NodeID{4, 5, 6}})
			return err
		}},
		// Jam: every channel is jammed — even command delivery fails,
		// with an explicit verdict.
		{"jam all channels", "jam", func(dep *deployment, inj *fault.Injector) error {
			_, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.Jam})
			return err
		}},
		// Recovery: node 2 crashes for two seconds, reboots,
		// re-registers, and answers commands again.
		{"crash 2 + reboot", "crash-2-reboot", func(dep *deployment, inj *fault.Injector) error {
			if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.NodeCrash, Node: 2,
				Duration: 2 * time.Second}); err != nil {
				return err
			}
			dep.tb.Run(4 * time.Second) // crash window plus re-registration time
			return nil
		}},
		// Determinism: the crash scenario replayed with the same seed
		// must reproduce the exact delays and verdicts.
		{"crash replay", "crash-replay", crashScript},
	}
	outs := make([]struct{ p, t outcome }, len(scenarios))
	if err := opt.forEach(len(scenarios), func(i int) error {
		p, t, err := run(scenarios[i].slug, scenarios[i].script)
		if err != nil {
			return fmt.Errorf("%s: %w", scenarios[i].slug, err)
		}
		outs[i] = struct{ p, t outcome }{p, t}
		return nil
	}); err != nil {
		return nil, err
	}
	r.Trials = len(scenarios)
	for i, sc := range scenarios {
		if sc.slug == "crash-replay" {
			continue // determinism replay: checked below, not tabulated
		}
		r.Table.AddRow(sc.label, "ping 1→2", outs[i].p.ok, outs[i].p.delayMs, outs[i].p.verdict)
		r.Table.AddRow(sc.label, "traceroute 1→6", outs[i].t.ok, outs[i].t.delayMs, outs[i].t.verdict)
	}

	pBase, tBase := outs[0].p, outs[0].t
	r.check("baseline ping ok", pBase.ok, "verdict %q", pBase.verdict)
	r.check("baseline traceroute ok", tBase.ok, "verdict %q", tBase.verdict)

	pCrash, tCrash := outs[1].p, outs[1].t
	r.check("crash: ping past the crash still ok", pCrash.ok, "verdict %q", pCrash.verdict)
	r.check("crash: traceroute reports a broken path", !tCrash.ok && tCrash.verdict != "",
		"verdict %q", tCrash.verdict)

	pBlack := outs[2].p
	r.check("blackout: ping fails explicitly", !pBlack.ok && pBlack.verdict != "",
		"verdict %q", pBlack.verdict)

	pCor := outs[3].p
	r.check("corrupt: ping terminates with a verdict", pCor.verdict != "", "verdict %q", pCor.verdict)

	pPart, tPart := outs[4].p, outs[4].t
	r.check("partition: ping inside the main segment ok", pPart.ok, "verdict %q", pPart.verdict)
	r.check("partition: traceroute reports a broken path", !tPart.ok && tPart.verdict != "",
		"verdict %q", tPart.verdict)

	pJam, tJam := outs[5].p, outs[5].t
	r.check("jam: ping fails explicitly", !pJam.ok && pJam.verdict != "", "verdict %q", pJam.verdict)
	r.check("jam: traceroute fails explicitly", !tJam.ok && tJam.verdict != "", "verdict %q", tJam.verdict)

	pRec, tRec := outs[6].p, outs[6].t
	r.check("recovery: rebooted node answers ping", pRec.ok, "verdict %q", pRec.verdict)
	r.check("recovery: traceroute crosses the rebooted node", tRec.ok, "verdict %q", tRec.verdict)

	pCrash2, tCrash2 := outs[7].p, outs[7].t
	r.check("determinism: same seed, same fault, same outcome",
		pCrash == pCrash2 && tCrash == tCrash2,
		"crash replay: ping %.3f/%.3f ms, traceroute %.3f/%.3f ms",
		pCrash.delayMs, pCrash2.delayMs, tCrash.delayMs, tCrash2.delayMs)

	r.note("every command above terminated inside its response window; failures are explicit verdicts, not hangs")
	return r, nil
}
