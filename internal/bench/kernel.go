package bench

import (
	"runtime"
	"time"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/trace"
)

// This file is the kernel row of the perf trajectory: it measures the
// engine's event structure (hierarchical timer wheel, PR 10) against a
// reference binary heap — the structure PR 5's engine used — on the
// dominant scheduling pattern, and pins the frame path's steady-state
// allocation rate. Timing readings are run-to-run noise and the
// allocation counter (runtime.MemStats.Mallocs) is process-wide, so
// both are meaningful only in a sequential run: under
// Options.NoWallClock or a parallel runner (Workers != 1) the measured
// columns collapse to placeholders — the same degradation as the scale
// experiment's wall-clock columns — keeping parallel-runner output
// byte-identical and the shape checks deterministic.

// kev is a reference-heap entry: the (when, seq) key the engine orders
// events by, with the heap port of the PR-5 pooled-heap engine.
type kev struct {
	when int64
	seq  uint64
}

type refHeap []kev

func (h refHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h *refHeap) push(e kev) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *refHeap) pop() kev {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q.less(r, l) {
			least = r
		}
		if !q.less(least, i) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// lplPattern is the schedule the wheel was built for: tickers all
// rescheduling one period ahead of a moving now — LPL wakeups and
// beacon intervals at network scale.
const lplPeriod = 100 * time.Millisecond

// runWheelTicker drives a real engine through the ticker pattern and
// returns ns per event.
func runWheelTicker(tickers, events int) float64 {
	eng := sim.NewEngine(11)
	fired := 0
	fns := make([]func(), tickers)
	for i := range fns {
		i := i
		fns[i] = func() {
			fired++
			if fired >= events {
				eng.Stop()
				return
			}
			eng.After(lplPeriod, fns[i])
		}
	}
	for i := range fns {
		eng.After(sim.Time(lplPeriod)*sim.Time(i+1)/sim.Time(tickers), fns[i])
	}
	start := time.Now()
	eng.Run()
	return float64(time.Since(start).Nanoseconds()) / float64(events)
}

// runHeapTicker drives the reference heap through the identical
// pattern (pop earliest, reschedule one period out) and returns ns per
// event. It exercises only the data structure — no callbacks — which
// flatters the heap; the wheel must win anyway.
func runHeapTicker(tickers, events int) float64 {
	var h refHeap
	var seq uint64
	for i := 0; i < tickers; i++ {
		seq++
		h.push(kev{when: int64(lplPeriod) * int64(i+1) / int64(tickers), seq: seq})
	}
	start := time.Now()
	for fired := 0; fired < events; fired++ {
		top := h.pop()
		seq++
		h.push(kev{when: top.when + int64(lplPeriod), seq: seq})
	}
	return float64(time.Since(start).Nanoseconds()) / float64(events)
}

// allocsPerOp measures the average heap allocations per call to f,
// serialized on one CPU the way testing.AllocsPerRun does (without
// dragging package testing into the lvbench binary).
func allocsPerOp(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// framePathRig wires two real nodes one hop apart (the alloc-guard
// test's topology) and returns a closure performing one send+delivery.
func framePathRig(dst phys.NodeID) (func(), error) {
	eng := sim.NewEngine(7)
	med := medium.New(eng, phys.DefaultModel(7))
	mkNode := func(id phys.NodeID, pos phys.Position) (*stack.Stack, error) {
		rad, err := radio.New(17)
		if err != nil {
			return nil, err
		}
		var st *stack.Stack
		m, err := mac.New(eng, med, rad, id, pos, mac.DefaultConfig(),
			func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
		if err != nil {
			return nil, err
		}
		st = stack.New(eng, m)
		return st, nil
	}
	tx, err := mkNode(1, phys.Position{})
	if err != nil {
		return nil, err
	}
	rx, err := mkNode(2, phys.Position{X: 5})
	if err != nil {
		return nil, err
	}
	if err := rx.Subscribe(10, func(*stack.Packet, phys.NodeID, medium.RxInfo) {}); err != nil {
		return nil, err
	}
	pkt := &stack.Packet{Port: 10, Origin: 1, Dst: 2, TTL: 4, Data: make([]byte, 32)}
	return func() {
		if err := tx.Send(pkt, dst, mac.TypeData, nil); err != nil {
			panic(err)
		}
		eng.Run()
	}, nil
}

// Kernel measures the simulation kernel itself: wheel-vs-heap event
// throughput on the LPL/beacon pattern and allocations per steady-state
// frame delivery.
func Kernel(seed uint64, opt Options) (*Result, error) {
	r := &Result{ID: "KERNEL", Title: "sim-kernel: timer wheel vs reference heap, frame-path allocations"}
	tickers, events := 4096, 2_000_000
	if opt.Short {
		tickers, events = 1024, 200_000
	}
	r.Table = trace.NewTable("bench", "variant", "size", "ops", "ns_op", "allocs_op")
	measure := !opt.NoWallClock && opt.Workers == 1

	var wheelNs, heapNs float64
	if measure {
		wheelNs = runWheelTicker(tickers, events)
		heapNs = runHeapTicker(tickers, events)
		r.Table.AddRow("schedule-lpl", "wheel", tickers, events, wheelNs, 0.0)
		r.Table.AddRow("schedule-lpl", "ref-heap", tickers, events, heapNs, "-")
	} else {
		r.Table.AddRow("schedule-lpl", "wheel", tickers, events, "-", "-")
		r.Table.AddRow("schedule-lpl", "ref-heap", tickers, events, "-", "-")
	}

	const allocRuns = 200
	for _, fp := range []struct {
		name string
		dst  phys.NodeID
	}{
		{"frame-broadcast", phys.Broadcast},
		{"frame-unicast-acked", 2},
	} {
		step, err := framePathRig(fp.dst)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 16; i++ {
			step() // warm pools and link caches before measuring
		}
		if measure {
			start := time.Now()
			allocs := allocsPerOp(allocRuns, step)
			ns := float64(time.Since(start).Nanoseconds()) / float64(allocRuns+1)
			r.Table.AddRow(fp.name, "one hop", 2, allocRuns, ns, allocs)
			r.check(fp.name+" steady state is allocation-free", allocs == 0,
				"%.2f allocs per delivery", allocs)
		} else {
			r.Table.AddRow(fp.name, "one hop", 2, allocRuns, "-", "-")
			r.check(fp.name+" steady state is allocation-free", true,
				"alloc readings suppressed (needs a sequential wall-clock run)")
		}
	}

	if measure {
		r.check("wheel outpaces reference heap on the LPL pattern", wheelNs < heapNs,
			"wheel %.1f ns/event vs heap %.1f ns/event (%.2fx)", wheelNs, heapNs, heapNs/wheelNs)
		r.note("wheel run includes full engine dispatch; the heap run is the bare structure")
	} else {
		r.check("wheel outpaces reference heap on the LPL pattern", true,
			"timing readings suppressed (needs a sequential wall-clock run)")
	}
	return r, nil
}
