package bench

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"
)

// JSONExperiment is one experiment's machine-readable summary.
type JSONExperiment struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Pass is true when the experiment ran and every shape check held.
	Pass bool `json:"pass"`
	// Error holds the run error, if the experiment failed to run at all.
	Error string `json:"error,omitempty"`
	// WallMS is the real time the experiment cost inside the runner.
	WallMS float64 `json:"wall_ms"`
	// Trials counts the independent simulations the experiment
	// aggregated (≥1).
	Trials int `json:"trials"`
	// Checks and FailedChecks count the shape assertions.
	Checks       int `json:"checks"`
	FailedChecks int `json:"failed_checks"`
	// Rows is the regenerated table's row count.
	Rows int `json:"rows"`
}

// JSONReport is the machine-readable result of one lvbench run,
// emitted by -json so the perf trajectory (wall-clock per experiment,
// worker scaling) is tracked across commits in BENCH_lvbench.json.
type JSONReport struct {
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	Short   bool   `json:"short"`
	// GoMaxProcs is the effective runtime.GOMAXPROCS at report time —
	// recorded by NewJSONReport itself so the committed file reflects
	// the machine the numbers were measured on, not a caller-supplied
	// constant.
	GoMaxProcs int `json:"gomaxprocs"`
	// MediumWorkers is the sharded-medium assessment concurrency the
	// scale experiments ran with (0 = unsharded/sequential medium).
	// Throughput rows are meaningless without it.
	MediumWorkers int              `json:"medium_workers"`
	WallMSTotal   float64          `json:"wall_ms_total"`
	Pass          bool             `json:"pass"`
	Experiments   []JSONExperiment `json:"experiments"`
}

// NewJSONReport summarises a RunAll result set. total is the whole
// run's wall time (with Workers > 1 it is less than the sum of the
// per-experiment times — that difference is the parallel speedup).
func NewJSONReport(outcomes []Outcome, seed uint64, opt Options, total time.Duration) JSONReport {
	rep := JSONReport{
		Seed:          seed,
		Workers:       opt.withGate().Workers,
		Short:         opt.Short,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		MediumWorkers: opt.MediumWorkers,
		WallMSTotal:   float64(total.Nanoseconds()) / 1e6,
		Pass:          true,
	}
	for _, o := range outcomes {
		je := JSONExperiment{
			ID:     o.Exp.ID,
			WallMS: float64(o.Wall.Nanoseconds()) / 1e6,
			Trials: 1,
		}
		if o.Err != nil {
			je.Error = o.Err.Error()
		}
		if o.Res != nil {
			je.Title = o.Res.Title
			je.Checks = len(o.Res.Checks)
			for _, c := range o.Res.Checks {
				if !c.Pass {
					je.FailedChecks++
				}
			}
			if o.Res.Trials > 0 {
				je.Trials = o.Res.Trials
			}
			if o.Res.Table != nil {
				je.Rows = o.Res.Table.Rows()
			}
		}
		je.Pass = o.Passed()
		if !je.Pass {
			rep.Pass = false
		}
		rep.Experiments = append(rep.Experiments, je)
	}
	return rep
}

// WriteJSON renders the report as indented JSON.
func (rep JSONReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONFile writes the report to path.
func (rep JSONReport) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
