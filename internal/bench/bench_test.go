package bench

import (
	"strings"
	"testing"
)

// TestAllExperiments runs every regenerated experiment and requires all
// shape checks to pass — this is the repository's statement that the
// paper's qualitative results hold on the simulated substrate.
func TestAllExperiments(t *testing.T) {
	// The scale experiment's sharded row runs at 576 nodes here; the
	// real 10,000-node deployment is exercised by the lvbench -short
	// smoke and by internal/medium's worker-invariance regression.
	opt := Options{Short: testing.Short(), scaleBigSide: 24}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := exp.Run(42, opt)
			if err != nil {
				t.Fatalf("%s failed to run: %v", exp.ID, err)
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("check %q failed: %s", c.Name, c.Detail)
				}
			}
			if out := res.String(); !strings.Contains(out, res.ID) {
				t.Error("rendering lost the experiment ID")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("f5"); !ok {
		t.Fatal("f5 missing")
	}
	if _, ok := ByID("zz"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "X", Title: "t"}
	r.check("a", true, "fine")
	if !r.Passed() {
		t.Fatal("all-pass result reported failure")
	}
	r.check("b", false, "broken %d", 7)
	if r.Passed() {
		t.Fatal("failing check unreported")
	}
	out := r.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "broken 7") {
		t.Fatalf("rendering:\n%s", out)
	}
}

// TestExperimentsSeedStable spot-checks that an experiment is
// deterministic for a fixed seed.
func TestExperimentsSeedStable(t *testing.T) {
	a, err := Figure7(7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure7(7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.CSV() != b.Table.CSV() {
		t.Fatalf("same seed, different tables:\n%s\nvs\n%s", a.Table.CSV(), b.Table.CSV())
	}
}

// TestTrialSeed pins the trial-seed schedule: experiments that average
// over independent trials all derive per-trial seeds through this one
// helper, so the schedule is part of the determinism contract.
func TestTrialSeed(t *testing.T) {
	if got := trialSeed(42, 0); got != 42 {
		t.Fatalf("trial 0 must run on the base seed, got %d", got)
	}
	if got := trialSeed(42, 3); got != 42+3000 {
		t.Fatalf("trialSeed(42, 3) = %d, want %d", got, 42+3000)
	}
	seen := map[uint64]bool{}
	for trial := 0; trial < 100; trial++ {
		s := trialSeed(7, trial)
		if seen[s] {
			t.Fatalf("trial seeds collide at trial %d (seed %d)", trial, s)
		}
		seen[s] = true
	}
}
