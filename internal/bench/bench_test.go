package bench

import (
	"strings"
	"testing"
)

// TestAllExperiments runs every regenerated experiment and requires all
// shape checks to pass — this is the repository's statement that the
// paper's qualitative results hold on the simulated substrate.
func TestAllExperiments(t *testing.T) {
	if testing.Short() {
		SetShort(true)
		defer SetShort(false)
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := exp.Run(42)
			if err != nil {
				t.Fatalf("%s failed to run: %v", exp.ID, err)
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("check %q failed: %s", c.Name, c.Detail)
				}
			}
			if out := res.String(); !strings.Contains(out, res.ID) {
				t.Error("rendering lost the experiment ID")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("f5"); !ok {
		t.Fatal("f5 missing")
	}
	if _, ok := ByID("zz"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "X", Title: "t"}
	r.check("a", true, "fine")
	if !r.Passed() {
		t.Fatal("all-pass result reported failure")
	}
	r.check("b", false, "broken %d", 7)
	if r.Passed() {
		t.Fatal("failing check unreported")
	}
	out := r.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "broken 7") {
		t.Fatalf("rendering:\n%s", out)
	}
}

// TestExperimentsSeedStable spot-checks that an experiment is
// deterministic for a fixed seed.
func TestExperimentsSeedStable(t *testing.T) {
	a, err := Figure7(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure7(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.CSV() != b.Table.CSV() {
		t.Fatalf("same seed, different tables:\n%s\nvs\n%s", a.Table.CSV(), b.Table.CSV())
	}
}
