// Package bench regenerates every table and figure in the paper's
// evaluation section (Section V) plus the ablations DESIGN.md calls
// out. Each experiment returns a Result holding the regenerated rows,
// explanatory notes, and shape checks — the assertions that the
// qualitative claims of the paper hold on our simulated substrate (who
// wins, what grows linearly, what exceeds what), rather than absolute
// numbers from the authors' physical testbed.
package bench

import (
	"fmt"
	"strings"

	"liteview/internal/trace"
)

// Check is one shape assertion of an experiment.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is the outcome of one regenerated experiment.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (E1, F5, ...).
	ID string
	// Title describes what the paper shows.
	Title string
	// Table holds the regenerated rows.
	Table *trace.Table
	// Notes carries free-form observations.
	Notes []string
	// Checks holds the shape assertions.
	Checks []Check
	// Trials counts the independent simulation runs the experiment
	// aggregated (deployments, per-trial engines, scenario replays).
	// Zero means the experiment did not set it; treat as 1.
	Trials int
}

// check records one assertion.
func (r *Result) check(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// note records one observation.
func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Passed reports whether every shape check held.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// String renders the experiment for terminal output.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return b.String()
}

// Experiment is a regenerable experiment. Run must be self-contained:
// it builds its own engines, media, and telemetry buses from (seed,
// opt) and shares no mutable state with other runs, so the parallel
// runner may execute any set of experiments concurrently.
type Experiment struct {
	ID   string
	Name string
	Run  func(seed uint64, opt Options) (*Result, error)
}

// trialSeed derives the engine/model seed of one trial of an
// experiment from its base seed. It is the single definition of the
// trial-seed schedule: every per-trial loop uses it, so the parallel
// runner and the legacy sequential path can never diverge on seeding.
// The stride of 1000 keeps neighbouring trial streams far apart even
// under the small base-seed perturbations the seed-robustness suite
// applies.
func trialSeed(base uint64, trial int) uint64 {
	return base + uint64(trial)*1000
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"e1", "response delays of one-hop commands", ResponseDelays},
		{"f5", "traceroute response delay vs hops (Figure 5)", Figure5},
		{"f6", "per-hop RSSI at two power levels (Figure 6)", Figure6},
		{"f7", "traceroute control-packet overhead (Figure 7)", Figure7},
		{"t1", "command footprints and zero-inactive-overhead", FootprintTable},
		{"t2", "single-hop ping sample (paper §III-B.3)", PingSample},
		{"t3", "link-quality padding capacity (paper §IV-C.3)", PaddingCapacity},
		{"d2", "ablation: multi-hop ping vs traceroute", PingVsTraceroute},
		{"d3", "ablation: adaptive vs fixed batch size", AdaptiveBatch},
		{"d4", "ablation: kernel-shared vs per-protocol neighbor tables", NeighborSharing},
		{"d5", "ablation: one ping command over two routing protocols", ProtocolComparison},
		{"d6", "ablation: transmit-power tuning vs energy", EnergyTuning},
		{"d7", "ablation: always-on vs low-power listening", DutyCycling},
		{"chaos", "command behaviour under injected faults", Chaos},
		{"kernel", "sim-kernel: timer wheel vs reference heap, zero-alloc frame path", Kernel},
		{"recover", "self-healing: reroute after relay failure", Recovery},
		{"scale", "medium scalability: commands on 400-node and sharded 10k-node grids", Scale},
	}
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
