package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// renderOutcomes flattens a RunAll result set to the text a user sees:
// every rendered result (including check lines) plus the CSV form of
// every table, in experiment order.
func renderOutcomes(t *testing.T, outs []Outcome) string {
	t.Helper()
	var sb strings.Builder
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Exp.ID, o.Err)
		}
		sb.WriteString(o.Res.String())
		if o.Res.Table != nil {
			sb.WriteString(o.Res.Table.CSV())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// readDir returns the sorted file names and their contents for every
// regular file in dir.
func readDir(t *testing.T, dir string) (names []string, contents map[string][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	contents = make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, e.Name())
		contents[e.Name()] = data
	}
	sort.Strings(names)
	return names, contents
}

// TestParallelDeterminism is the runner's core regression: a run fanned
// over eight workers must produce byte-identical output — rendered
// tables, check lines, and every telemetry artifact (JSONL + Chrome
// trace) — to the legacy sequential baseline. NoWallClock collapses
// the scale experiment's real-time readings, the only legitimately
// nondeterministic output.
func TestParallelDeterminism(t *testing.T) {
	seqDir := t.TempDir()
	parDir := t.TempDir()
	// scaleBigSide shrinks the scale experiment's 10k sharded row to a
	// 576-node one: worker invariance at full 10,000-node scale is
	// pinned by internal/medium's TestShardedScaleWorkerInvariance, so
	// this test buys nothing by re-simulating it twice.
	base := Options{Short: true, NoWallClock: true, scaleBigSide: 24}

	seqOpt := base
	seqOpt.TraceDir = seqDir
	seqOpt.Workers = 1
	seqOuts := RunAll(All(), 42, seqOpt)

	parOpt := base
	parOpt.TraceDir = parDir
	parOpt.Workers = 8
	parOuts := RunAll(All(), 42, parOpt)

	seqText := renderOutcomes(t, seqOuts)
	parText := renderOutcomes(t, parOuts)
	if seqText != parText {
		t.Errorf("parallel output diverged from sequential output:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			seqText, parText)
	}

	seqNames, seqFiles := readDir(t, seqDir)
	parNames, parFiles := readDir(t, parDir)
	if strings.Join(seqNames, ",") != strings.Join(parNames, ",") {
		t.Fatalf("artifact sets differ:\nworkers=1: %v\nworkers=8: %v", seqNames, parNames)
	}
	if len(seqNames) == 0 {
		t.Fatal("tracing enabled but no artifacts were written")
	}
	for _, name := range seqNames {
		if !bytes.Equal(seqFiles[name], parFiles[name]) {
			t.Errorf("artifact %s differs between workers=1 and workers=8", name)
		}
	}
}

// TestRunAllOrderAndOutcomes checks the aggregation contract: outcomes
// come back in input order regardless of completion order, with wall
// time and pass/fail populated.
func TestRunAllOrderAndOutcomes(t *testing.T) {
	exps := All()
	outs := RunAll(exps, 42, Options{Short: true, Workers: 4, scaleBigSide: 24})
	if len(outs) != len(exps) {
		t.Fatalf("got %d outcomes for %d experiments", len(outs), len(exps))
	}
	for i, o := range outs {
		if o.Exp.ID != exps[i].ID {
			t.Fatalf("outcome %d is %s, want %s — order not preserved", i, o.Exp.ID, exps[i].ID)
		}
		if !o.Passed() {
			t.Errorf("%s failed under the parallel runner: err=%v", o.Exp.ID, o.Err)
		}
		if o.Wall <= 0 {
			t.Errorf("%s: wall time not recorded", o.Exp.ID)
		}
	}
}

// TestRunAllConcurrentEngines drives at least four simulations
// concurrently through the runner. Its real assertion is made by the
// race detector (CI runs this package under -race): no experiment may
// share mutable state — engines, media, telemetry buses, RNG streams —
// with another.
func TestRunAllConcurrentEngines(t *testing.T) {
	exps := []Experiment{}
	for _, id := range []string{"e1", "f5", "f7", "t2", "t3", "d2"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		exps = append(exps, e)
	}
	outs := RunAll(exps, 7, Options{Short: true, Workers: len(exps)})
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Exp.ID, o.Err)
		}
	}
}

// TestForEachInlineFallback pins the nested fan-out guarantee: when the
// worker gate is saturated, forEach runs jobs inline instead of
// queueing, so nested forEach calls (experiment level × trial level)
// cannot deadlock and total concurrency stays bounded.
func TestForEachInlineFallback(t *testing.T) {
	opt := Options{Workers: 2}.withGate()
	hits := make([]int, 64)
	err := opt.forEach(8, func(i int) error {
		// Nested fan-out from inside a worker: must complete even with
		// every gate slot taken.
		return opt.forEach(8, func(j int) error {
			hits[i*8+j]++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for idx, n := range hits {
		if n != 1 {
			t.Fatalf("job %d ran %d times", idx, n)
		}
	}
}

// TestJSONReport checks the machine-readable summary produced for
// lvbench -json.
func TestJSONReport(t *testing.T) {
	e, ok := ByID("f7")
	if !ok {
		t.Fatal("f7 missing")
	}
	outs := RunAll([]Experiment{e}, 42, Options{Short: true, Workers: 1})
	rep := NewJSONReport(outs, 42, Options{Short: true, Workers: 1, MediumWorkers: 4}, outs[0].Wall)
	if rep.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Fatalf("GoMaxProcs = %d, want the effective %d", rep.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if rep.MediumWorkers != 4 {
		t.Fatalf("MediumWorkers = %d, want 4", rep.MediumWorkers)
	}
	if !rep.Pass || len(rep.Experiments) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	je := rep.Experiments[0]
	if je.ID != "f7" || !je.Pass || je.Checks == 0 || je.Rows == 0 || je.Trials < 1 {
		t.Fatalf("experiment summary: %+v", je)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"seed": 42`, `"workers": 1`, `"id": "f7"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, buf.String())
		}
	}
}
