package bench

import (
	"os"
	"path/filepath"

	"liteview/internal/telemetry"
)

// traceDir, when non-empty, makes experiments that support it record
// cross-layer telemetry and write per-scenario artifacts
// (<dir>/<stem>.jsonl and <dir>/<stem>.trace.json). Set from lvbench's
// -trace flag. Recording is non-perturbing, so results are identical
// with or without it — the chaos determinism check still holds.
var traceDir string

// SetTraceDir enables per-scenario telemetry artifacts under dir
// (empty disables them again).
func SetTraceDir(dir string) { traceDir = dir }

// tracing reports whether artifact recording is enabled.
func tracing() bool { return traceDir != "" }

// writeTelemetry exports rec's captured events under the given artifact
// stem, as both JSONL and a Chrome trace-event file.
func writeTelemetry(stem string, rec *telemetry.Recorder) error {
	if traceDir == "" || rec == nil {
		return nil
	}
	if err := os.MkdirAll(traceDir, 0o755); err != nil {
		return err
	}
	events := rec.Events()
	jf, err := os.Create(filepath.Join(traceDir, stem+".jsonl"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(jf, events, telemetry.Filter{}); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(traceDir, stem+".trace.json"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(cf, events, telemetry.Filter{}); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}
