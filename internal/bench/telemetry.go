package bench

import (
	"os"
	"path/filepath"

	"liteview/internal/telemetry"
)

// writeTelemetry exports rec's captured events under the given artifact
// stem, as both JSONL and a Chrome trace-event file. Artifact stems are
// unique per scenario, so concurrent experiments never write the same
// file; MkdirAll is safe to race.
func writeTelemetry(opt Options, stem string, rec *telemetry.Recorder) error {
	traceDir := opt.TraceDir
	if traceDir == "" || rec == nil {
		return nil
	}
	if err := os.MkdirAll(traceDir, 0o755); err != nil {
		return err
	}
	events := rec.Events()
	jf, err := os.Create(filepath.Join(traceDir, stem+".jsonl"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(jf, events, telemetry.Filter{}); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(traceDir, stem+".trace.json"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(cf, events, telemetry.Filter{}); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}
