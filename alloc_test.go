package liteview

// AllocsPerRun guards for the zero-alloc frame path: once pools and
// caches are warm, a full one-hop delivery — stack encode, MAC
// enqueue/CSMA, medium assessment + delivery, MAC decode + dedup,
// stack dispatch, and (for unicast) the auto-ack exchange — must not
// touch the allocator. These are tests, not benchmarks, so `go test`
// alone catches an allocation regression without -bench flags.

import (
	"testing"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// buildFramePath wires two real nodes 5 m apart and returns the sender
// stack, the engine, and a delivery counter.
func buildFramePath(t *testing.T) (*sim.Engine, *stack.Stack, *int) {
	t.Helper()
	eng := sim.NewEngine(7)
	med := medium.New(eng, phys.DefaultModel(7))
	mkNode := func(id phys.NodeID, pos phys.Position) *stack.Stack {
		rad, err := radio.New(17)
		if err != nil {
			t.Fatal(err)
		}
		var st *stack.Stack
		m, err := mac.New(eng, med, rad, id, pos, mac.DefaultConfig(),
			func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
		if err != nil {
			t.Fatal(err)
		}
		st = stack.New(eng, m)
		return st
	}
	tx := mkNode(1, phys.Position{})
	rx := mkNode(2, phys.Position{X: 5})
	got := 0
	if err := rx.Subscribe(10, func(p *stack.Packet, _ phys.NodeID, _ medium.RxInfo) {
		got += len(p.Data)
	}); err != nil {
		t.Fatal(err)
	}
	return eng, tx, &got
}

func checkZeroAllocDelivery(t *testing.T, dst phys.NodeID) {
	t.Helper()
	eng, tx, got := buildFramePath(t)
	pkt := &stack.Packet{Port: 10, Origin: 1, Dst: 2, TTL: 4, Data: make([]byte, 32)}
	send := func() {
		if err := tx.Send(pkt, dst, mac.TypeData, nil); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	for i := 0; i < 16; i++ {
		send() // warm link caches, event free list, frame pools
	}
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("steady-state delivery to %v allocates %.1f allocs/op, want 0", dst, allocs)
	}
	if *got == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestSteadyStateDeliveryZeroAllocBroadcast(t *testing.T) {
	checkZeroAllocDelivery(t, phys.Broadcast)
}

func TestSteadyStateDeliveryZeroAllocUnicastAcked(t *testing.T) {
	checkZeroAllocDelivery(t, 2)
}

// TestEnginePooledScheduleZeroAlloc pins the handle-free After/AfterArg
// paths: a warm engine schedules and fires pooled events without
// allocating, including the LPL-style many-ticker pattern.
func TestEnginePooledScheduleZeroAlloc(t *testing.T) {
	eng := sim.NewEngine(1)
	fn := func() {}
	tick := func() {
		eng.After(1000, fn)
		eng.Run()
	}
	for i := 0; i < 16; i++ {
		tick()
	}
	if allocs := testing.AllocsPerRun(200, tick); allocs != 0 {
		t.Fatalf("pooled After allocates %.1f allocs/op, want 0", allocs)
	}
	argFn := func(any) {}
	arg := &struct{}{}
	tickArg := func() {
		eng.AfterArg(1000, argFn, arg)
		eng.Run()
	}
	tickArg()
	if allocs := testing.AllocsPerRun(200, tickArg); allocs != 0 {
		t.Fatalf("pooled AfterArg allocates %.1f allocs/op, want 0", allocs)
	}
}
